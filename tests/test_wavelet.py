"""Tests for wavelet trees (Huffman-shaped, balanced) and the wavelet matrix."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConstructionError, QueryError
from repro.wavelet import (
    BalancedWaveletTree,
    HuffmanWaveletTree,
    WaveletMatrix,
    WaveletTree,
    fixed_width_codes,
    plain_bitvector_factory,
    rrr_bitvector_factory,
)

STRUCTURES = {
    "hwt-plain": lambda seq: HuffmanWaveletTree(seq, plain_bitvector_factory()),
    "hwt-rrr": lambda seq: HuffmanWaveletTree(seq, rrr_bitvector_factory(31)),
    "balanced": lambda seq: BalancedWaveletTree(seq),
    "wm-plain": lambda seq: WaveletMatrix(seq),
    "wm-rrr": lambda seq: WaveletMatrix(seq, bitvector_factory=rrr_bitvector_factory(15)),
}


def naive_rank(sequence, symbol, i):
    return int(np.count_nonzero(np.asarray(sequence[:i]) == symbol))


@pytest.fixture(scope="module")
def skewed_sequence():
    rng = np.random.default_rng(5)
    return rng.choice(30, size=600, p=np.array([0.4] + [0.6 / 29] * 29)).astype(np.int64)


class TestRankAndAccess:
    @pytest.mark.parametrize("name", sorted(STRUCTURES))
    def test_rank_matches_naive(self, name, skewed_sequence):
        structure = STRUCTURES[name](skewed_sequence)
        for i in range(0, len(skewed_sequence) + 1, 37):
            for symbol in (0, 1, 7, 29, 31):
                assert structure.rank(symbol, i) == naive_rank(skewed_sequence, symbol, i)

    @pytest.mark.parametrize("name", sorted(STRUCTURES))
    def test_access_matches_sequence(self, name, skewed_sequence):
        structure = STRUCTURES[name](skewed_sequence)
        for i in range(0, len(skewed_sequence), 23):
            assert structure.access(i) == skewed_sequence[i]

    @pytest.mark.parametrize("name", sorted(STRUCTURES))
    def test_full_rank_equals_counts(self, name, skewed_sequence):
        structure = STRUCTURES[name](skewed_sequence)
        counts = np.bincount(skewed_sequence)
        for symbol, count in enumerate(counts):
            assert structure.rank(symbol, len(skewed_sequence)) == count

    @pytest.mark.parametrize("name", sorted(STRUCTURES))
    def test_absent_symbol_rank_zero(self, name):
        structure = STRUCTURES[name]([2, 3, 2, 5])
        assert structure.rank(4, 4) == 0

    @pytest.mark.parametrize("name", sorted(STRUCTURES))
    def test_bounds_checking(self, name):
        structure = STRUCTURES[name]([1, 2, 3])
        with pytest.raises(QueryError):
            structure.rank(1, 4)
        with pytest.raises(QueryError):
            structure.access(3)

    @pytest.mark.parametrize("name", sorted(STRUCTURES))
    def test_single_symbol_sequence(self, name):
        structure = STRUCTURES[name]([4, 4, 4, 4])
        assert structure.rank(4, 3) == 3
        assert structure.access(2) == 4

    @pytest.mark.parametrize("name", sorted(STRUCTURES))
    def test_empty_rejected(self, name):
        with pytest.raises(ConstructionError):
            STRUCTURES[name]([])


class TestHuffmanShape:
    def test_depth_reflects_frequency(self, skewed_sequence):
        tree = HuffmanWaveletTree(skewed_sequence)
        dominant = 0  # symbol 0 has ~40% of the mass
        rare = int(skewed_sequence[-1])
        assert tree.depth_of(dominant) <= tree.depth_of(rare) or dominant == rare

    def test_average_depth_close_to_entropy(self, skewed_sequence):
        from repro.analysis import empirical_entropy_h0

        tree = HuffmanWaveletTree(skewed_sequence)
        entropy = empirical_entropy_h0(skewed_sequence)
        assert entropy - 1e-9 <= tree.average_depth() < entropy + 1.0

    def test_depth_of_unknown_symbol(self, skewed_sequence):
        tree = HuffmanWaveletTree(skewed_sequence)
        from repro.exceptions import AlphabetError

        with pytest.raises(AlphabetError):
            tree.depth_of(10_000)

    def test_low_entropy_sequence_is_smaller_than_balanced(self):
        rng = np.random.default_rng(0)
        seq = rng.choice(64, size=4000, p=np.array([0.8] + [0.2 / 63] * 63)).astype(np.int64)
        hwt = HuffmanWaveletTree(seq, rrr_bitvector_factory(63))
        balanced = BalancedWaveletTree(seq, rrr_bitvector_factory(63))
        assert hwt.size_in_bits() < balanced.size_in_bits()

    def test_node_count_bounded_by_alphabet(self, skewed_sequence):
        tree = HuffmanWaveletTree(skewed_sequence)
        distinct = len(np.unique(skewed_sequence))
        assert tree.node_count() <= distinct


class TestGenericWaveletTree:
    def test_missing_codes_rejected(self):
        with pytest.raises(ConstructionError):
            WaveletTree([1, 2, 3], codes={1: (0,), 2: (1, 0)})

    def test_non_prefix_free_codes_rejected(self):
        with pytest.raises(ConstructionError):
            WaveletTree([1, 2, 2, 1, 3], codes={1: (0,), 2: (0, 1), 3: (1,)})

    def test_fixed_width_codes_are_distinct(self):
        codes = fixed_width_codes([5, 9, 2, 7])
        assert len(set(codes.values())) == 4
        widths = {len(code) for code in codes.values()}
        assert widths == {2}

    def test_codes_property_returns_copy(self, skewed_sequence):
        tree = HuffmanWaveletTree(skewed_sequence)
        codes = tree.codes
        codes.clear()
        assert tree.codes  # internal state unaffected


class TestWaveletMatrix:
    def test_levels(self):
        assert WaveletMatrix([0, 1, 2, 3], sigma=4).levels == 2
        assert WaveletMatrix([0, 1], sigma=1000).levels == 10

    def test_sigma_too_small_rejected(self):
        with pytest.raises(ConstructionError):
            WaveletMatrix([5, 1], sigma=3)

    def test_negative_symbols_rejected(self):
        with pytest.raises(ConstructionError):
            WaveletMatrix([-1, 2])

    def test_rank_out_of_alphabet_is_zero(self):
        wm = WaveletMatrix([1, 2, 3], sigma=8)
        assert wm.rank(7, 3) == 0
        assert wm.rank(100, 3) == 0

    def test_size_smaller_with_rrr_on_biased_data(self):
        seq = np.zeros(5000, dtype=np.int64)
        seq[::100] = 5
        plain = WaveletMatrix(seq, sigma=8)
        compressed = WaveletMatrix(seq, sigma=8, bitvector_factory=rrr_bitvector_factory(63))
        assert compressed.size_in_bits() < plain.size_in_bits()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=200))
def test_all_structures_agree_on_arbitrary_sequences(sequence):
    arr = np.asarray(sequence, dtype=np.int64)
    structures = [
        HuffmanWaveletTree(arr),
        BalancedWaveletTree(arr),
        WaveletMatrix(arr),
    ]
    n = len(sequence)
    positions = {0, n // 2, n}
    symbols = set(sequence[:3]) | {0, 20}
    for i in positions:
        for symbol in symbols:
            expected = naive_rank(sequence, symbol, i)
            for structure in structures:
                assert structure.rank(symbol, i) == expected
    for structure in structures:
        assert structure.access(n - 1) == sequence[n - 1]
