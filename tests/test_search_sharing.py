"""Workload-aware search sharing: trie execution and the interval cache.

Property coverage for the PR-10 sharing layers:

* :class:`~repro.fmindex.trie.PatternTrie` structure invariants (BFS order,
  shared prefixes, duplicate and prefix-of patterns costing no extra nodes);
* bit-identity of the trie-shared batch path against scalar reference
  answers on **every registered backend**, unsharded and sharded, with the
  interval cache cold and warm;
* the same identity through the tail lifecycle of the growable backend:
  tail-only (fresh ``add_batch``), post-compaction (``consolidate``) and
  post-reload (``save``/``load``);
* :class:`~repro.engine.executor.IntervalCache` semantics — prefix-resume
  hits, capacity-bounded LRU eviction, the ``interval_cache_size=0`` kill
  switch, and epoch invalidation on growth (mirroring the result-cache
  epoch cases in ``test_query_pipeline.py``);
* :meth:`~repro.wavelet.tree.WaveletTree.rank_pairs` agreeing with the
  scalar ``rank`` walk for mixed-symbol frontiers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    ShardedTrajectoryEngine,
    TrajectoryEngine,
    available_backends,
    sample_paths,
)
from repro.engine.executor import IntervalCache
from repro.fmindex.trie import PatternTrie, trie_backward_search
from repro.io import load_index
from repro.network import grid_network
from repro.trajectories import TrajectoryDataset, straight_biased_walks
from repro.wavelet.tree import BalancedWaveletTree, HuffmanWaveletTree

BACKENDS = available_backends()


@pytest.fixture(scope="module")
def fleet_dataset():
    """A fleet on a grid network, shared by every backend parametrization."""
    network = grid_network(5, 5)
    rng = np.random.default_rng(31)
    trajectories = straight_biased_walks(
        network, n_trajectories=24, min_length=5, max_length=13, rng=rng
    )
    return TrajectoryDataset(
        name="sharing-fleet", trajectories=trajectories, network=network
    )


@pytest.fixture(scope="module")
def growth_batch(fleet_dataset):
    """Extra trajectories for the tail-lifecycle and epoch cases."""
    rng = np.random.default_rng(77)
    return straight_biased_walks(
        fleet_dataset.network, n_trajectories=6, min_length=5, max_length=10, rng=rng
    )


def sharing_workload(dataset, seed=5):
    """Edge-path batch with the shapes the trie must share correctly.

    Prefix-nested paths (every prefix of a few longer paths), literal
    duplicates, and likely-dead patterns (reversed paths) — shuffled so
    sharing cannot depend on batch order.
    """
    paths = sample_paths(dataset, 5, 6, seed=seed)
    batch = [path[:k] for path in paths for k in range(1, len(path) + 1)]
    batch += [paths[0], paths[0][:2]]  # literal duplicate + duplicated prefix
    batch += [list(reversed(path)) for path in paths[:2]]  # likely dead
    rng = np.random.default_rng(seed)
    return [batch[i] for i in rng.permutation(len(batch))]


def reference_counts(dataset, batch, backend):
    """Scalar per-pattern answers from a cache-less unsharded engine."""
    engine = TrajectoryEngine.build(
        dataset,
        EngineConfig(
            backend=backend,
            block_size=31,
            sa_sample_rate=8,
            cache_size=0,
            interval_cache_size=0,
        ),
    )
    return [engine.count(path) for path in batch]


class TestPatternTrie:
    def test_duplicates_and_prefixes_share_nodes(self):
        pattern = [4, 7, 2, 9]
        trie = PatternTrie([pattern, pattern, pattern[:2], pattern[:2], pattern])
        assert trie.n_nodes == len(pattern) + 1  # root + one node per symbol
        assert trie.n_patterns == 5
        # Duplicate patterns resolve to the same terminal node.
        assert trie.terminals[0] == trie.terminals[1] == trie.terminals[4]
        assert trie.terminals[2] == trie.terminals[3]

    def test_bfs_invariants(self):
        rng = np.random.default_rng(3)
        patterns = [list(rng.integers(0, 6, size=rng.integers(1, 9))) for _ in range(40)]
        trie = PatternTrie(patterns)
        # Parents precede children and sit exactly one level up.
        for node in range(1, trie.n_nodes):
            parent = int(trie.parents[node])
            assert parent < node
            assert trie.depths[node] == trie.depths[parent] + 1
        # Level slices tile [1, n_nodes) contiguously in depth order.
        cursor = 1
        for depth, (start, end) in enumerate(trie.level_slices, start=1):
            assert start == cursor
            assert np.all(trie.depths[start:end] == depth)
            cursor = end
        assert cursor == trie.n_nodes

    def test_prefix_keys_match_pattern_prefixes(self):
        patterns = [[1, 2, 3], [1, 2, 4], [5]]
        trie = PatternTrie(patterns)
        prefixes = set(trie.prefixes)
        for pattern in patterns:
            for k in range(1, len(pattern) + 1):
                assert tuple(pattern[:k]) in prefixes
        for pattern, terminal in zip(patterns, trie.terminals):
            assert trie.prefixes[terminal] == tuple(pattern)

    def test_empty_batch(self):
        trie = PatternTrie([])
        assert trie.n_nodes == 1
        assert trie.level_slices == []
        assert trie_backward_search(trie, np.zeros(2, dtype=np.int64), 1, None) == []


@pytest.mark.parametrize("backend", BACKENDS)
class TestBitIdentityUnsharded:
    def test_trie_batch_matches_scalar_cold_and_warm(self, fleet_dataset, backend):
        engine = TrajectoryEngine.build(
            fleet_dataset, EngineConfig(backend=backend, block_size=31, sa_sample_rate=8)
        )
        batch = sharing_workload(fleet_dataset)
        expected = reference_counts(fleet_dataset, batch, backend)
        assert engine.count_many(batch) == expected  # cold
        assert engine.count_many(batch) == expected  # warm (result + intervals)
        assert [engine.contains(path) for path in batch] == [
            count > 0 for count in expected
        ]


@pytest.mark.parametrize("backend", BACKENDS)
class TestBitIdentitySharded:
    def test_trie_batch_matches_scalar_across_shards(self, fleet_dataset, backend):
        sharded = ShardedTrajectoryEngine.build(
            fleet_dataset,
            EngineConfig(
                backend=backend, block_size=31, sa_sample_rate=8, num_shards=3
            ),
        )
        try:
            batch = sharing_workload(fleet_dataset, seed=9)
            expected = reference_counts(fleet_dataset, batch, backend)
            assert sharded.count_many(batch) == expected
            assert sharded.count_many(batch) == expected  # warm pass
        finally:
            sharded.close()


class TestTailLifecycle:
    """Bit-identity through the growable backend's tail states."""

    BACKEND = "partitioned-cinct"

    def rebuilt(self, fleet_dataset, growth_batch):
        combined = [list(t.edges) for t in fleet_dataset.trajectories]
        combined += [list(t.edges) for t in growth_batch]
        return TrajectoryEngine.build(
            combined,
            EngineConfig(
                backend=self.BACKEND, cache_size=0, interval_cache_size=0
            ),
        )

    def assert_parity(self, engine, reference, fleet_dataset, growth_batch):
        batch = sharing_workload(fleet_dataset, seed=13)
        batch += [list(t.edges[:3]) for t in growth_batch]
        expected = [reference.count(path) for path in batch]
        assert engine.count_many(batch) == expected
        assert engine.count_many(batch) == expected  # warm intervals

    def test_tail_only_compacted_and_reloaded(
        self, fleet_dataset, growth_batch, tmp_path
    ):
        engine = TrajectoryEngine.build(
            fleet_dataset, EngineConfig(backend=self.BACKEND)
        )
        reference = self.rebuilt(fleet_dataset, growth_batch)

        engine.add_batch([list(t.edges) for t in growth_batch])
        self.assert_parity(engine, reference, fleet_dataset, growth_batch)  # tail-only

        engine.consolidate()
        self.assert_parity(engine, reference, fleet_dataset, growth_batch)  # compacted

        engine.save(tmp_path / "grown")
        reloaded = load_index(tmp_path / "grown")
        self.assert_parity(reloaded, reference, fleet_dataset, growth_batch)  # reloaded


class TestIntervalCacheUnit:
    def test_store_lookup_and_dead_prefixes(self):
        cache = IntervalCache(capacity=8)
        assert cache.lookup((1, 2)) == (False, None)
        cache.store((1, 2), (5, 9))
        cache.store((1, 2, 3), None)  # dead prefixes are cacheable facts
        assert cache.lookup((1, 2)) == (True, (5, 9))
        assert cache.lookup((1, 2, 3)) == (True, None)
        stats = cache.stats()
        assert stats["hits"] == 2 and stats["misses"] == 1 and stats["size"] == 2

    def test_deepest_resumes_from_longest_cached_ancestor(self):
        cache = IntervalCache(capacity=8)
        cache.store((1,), (0, 100))
        cache.store((1, 2), (10, 40))
        keys = [(1, 2, 3, 4), (1, 2, 3), (1, 2), (1,)]  # longest first
        assert cache.deepest(keys) == (2, (10, 40))
        assert cache.deepest([(9, 9)]) == (-1, None)

    def test_capacity_bounds_and_evicts_lru(self):
        cache = IntervalCache(capacity=2)
        cache.store((1,), (0, 1))
        cache.store((2,), (0, 2))
        cache.lookup((1,))  # refresh (1,) so (2,) is the LRU victim
        cache.store((3,), (0, 3))
        assert cache.stats()["size"] == 2
        assert cache.stats()["evictions"] == 1
        assert cache.lookup((2,))[0] is False
        assert cache.lookup((1,))[0] is True

    def test_zero_capacity_disables(self):
        cache = IntervalCache(capacity=0)
        assert not cache.enabled
        cache.store((1,), (0, 1))
        assert cache.lookup((1,)) == (False, None)
        assert cache.stats()["size"] == 0

    def test_epoch_sync_invalidates(self):
        cache = IntervalCache(capacity=8, epoch=0)
        cache.store((1,), (0, 1))
        cache.sync_epoch(1)
        assert cache.lookup((1,))[0] is False
        stats = cache.stats()
        assert stats["epoch"] == 1
        assert stats["invalidations"] == 1
        assert stats["size"] == 0


class TestIntervalCacheInEngine:
    def test_extension_resumes_from_cached_prefix(self, fleet_dataset):
        engine = TrajectoryEngine.build(
            fleet_dataset, EngineConfig(backend="cinct", cache_size=0)
        )
        path = sample_paths(fleet_dataset, 4, 1, seed=8)[0]
        engine.count(path[:3])
        before = engine.interval_cache_stats()["hits"]
        engine.count(path)  # one-edge extension of the warm prefix
        assert engine.interval_cache_stats()["hits"] > before

    def test_size_knob_bounds_and_disables(self, fleet_dataset):
        bounded = TrajectoryEngine.build(
            fleet_dataset,
            EngineConfig(backend="cinct", cache_size=0, interval_cache_size=4),
        )
        bounded.count_many(sharing_workload(fleet_dataset))
        stats = bounded.interval_cache_stats()
        assert stats["size"] <= 4
        assert stats["evictions"] > 0

        disabled = TrajectoryEngine.build(
            fleet_dataset,
            EngineConfig(backend="cinct", cache_size=0, interval_cache_size=0),
        )
        batch = sharing_workload(fleet_dataset)
        assert disabled.count_many(batch) == bounded.count_many(batch)
        stats = disabled.interval_cache_stats()
        assert not stats["enabled"]
        assert stats["size"] == 0

    def test_runtime_disable_switch(self, fleet_dataset):
        engine = TrajectoryEngine.build(fleet_dataset, EngineConfig(backend="cinct"))
        path = sample_paths(fleet_dataset, 3, 1, seed=4)[0]
        engine.count(path)
        engine.disable_interval_cache()
        stats = engine.interval_cache_stats()
        assert not stats["enabled"]
        assert stats["size"] == 0
        assert engine.count(path) == engine.count(path)

    def test_growth_bumps_epoch_and_invalidates_intervals(
        self, fleet_dataset, growth_batch
    ):
        engine = TrajectoryEngine.build(
            fleet_dataset, EngineConfig(backend="partitioned-cinct")
        )
        probe = list(growth_batch[0].edges[:2])
        baseline = engine.count(probe)
        assert engine.interval_cache_stats()["epoch"] == 0

        engine.add_batch([list(t.edges) for t in growth_batch])
        stats = engine.interval_cache_stats()
        assert stats["epoch"] == engine.epoch == 1
        assert stats["invalidations"] >= 1
        assert stats["size"] == 0  # no pre-growth range can leak
        # Post-growth answers reflect the new trajectories, not stale ranges.
        assert engine.count(probe) >= max(baseline, 1)

        engine.consolidate()
        assert engine.interval_cache_stats()["epoch"] == engine.epoch == 2

    def test_sharded_stats_aggregate_and_invalidate(self, fleet_dataset, growth_batch):
        engine = ShardedTrajectoryEngine.build(
            fleet_dataset,
            EngineConfig(backend="partitioned-cinct", num_shards=3),
        )
        try:
            engine.count_many(sharing_workload(fleet_dataset))
            fleet = engine.interval_cache_stats()
            per_shard = engine.shard_interval_cache_stats()
            assert fleet["enabled"]
            assert fleet["size"] == sum(row["size"] for row in per_shard)
            assert fleet["size"] > 0

            # Growth routes to one shard; that shard's intervals invalidate.
            target = engine.router.shard_of(engine.n_trajectories)
            engine.add_batch([list(growth_batch[0].edges)])
            per_shard = engine.shard_interval_cache_stats()
            assert per_shard[target]["size"] == 0
            assert per_shard[target]["invalidations"] >= 1
        finally:
            engine.close()


class TestRankPairs:
    @pytest.mark.parametrize("tree_cls", [HuffmanWaveletTree, BalancedWaveletTree])
    def test_matches_scalar_rank_for_mixed_frontiers(self, tree_cls):
        rng = np.random.default_rng(0)
        sequence = rng.integers(0, 23, size=3000)
        sequence[rng.random(3000) < 0.5] = 3  # skew so Huffman is non-trivial
        tree = tree_cls(sequence)
        symbols = rng.integers(-2, 30, size=1500)  # includes absent symbols
        positions = rng.integers(0, 3001, size=1500)
        got = tree.rank_pairs(symbols, positions)
        want = [tree.rank(int(s), int(p)) for s, p in zip(symbols, positions)]
        assert got.tolist() == want

    def test_matches_rank_many_per_symbol(self):
        rng = np.random.default_rng(1)
        sequence = rng.integers(0, 9, size=500)
        tree = HuffmanWaveletTree(sequence)
        positions = rng.integers(0, 501, size=200)
        for symbol in range(9):
            assert np.array_equal(
                tree.rank_pairs(np.full(200, symbol), positions),
                tree.rank_many(symbol, positions),
            )


def test_non_sharing_backends_never_touch_the_interval_cache(fleet_dataset):
    """A backend without ``supports_interval_sharing`` leaves the cache cold.

    The executor must gate the ``interval_cache`` kwarg on the backend's
    declared capability — probing (or worse, populating) the cache through a
    backend that cannot resume suffix ranges would record nonsense stats.
    """
    engine = TrajectoryEngine.build(
        fleet_dataset, EngineConfig(backend="linear-scan", cache_size=0)
    )
    if getattr(engine._backend, "supports_interval_sharing", False):
        pytest.skip("linear-scan grew interval sharing; pick another control")
    engine.count_many(sharing_workload(fleet_dataset))
    stats = engine.interval_cache_stats()
    assert stats["enabled"]  # the cache exists and is on ...
    assert stats["hits"] == stats["misses"] == stats["size"] == 0  # ... but idle
