"""Engines and the result cache under concurrent callers.

The serving tier runs ``engine.run_many`` from multiple worker threads
against one shared engine, so the contract under test is twofold: answers
computed under thread contention are bit-identical to a sequential pass over
the same queries, and the :class:`~repro.engine.executor.ResultCache` keeps
its counters, LRU order, and byte accounting internally consistent while
being hammered from many threads at once.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.engine import (
    ContainsQuery,
    CountQuery,
    EngineConfig,
    LocateQuery,
    ResultCache,
    StrictPathQuery,
    build_engine,
)
from repro.trajectories import Trajectory

N_THREADS = 8


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(4321)
    ring = [f"s{i}" for i in range(10)]
    trajectories = []
    for trajectory_id in range(24):
        length = int(rng.integers(4, 10))
        start = int(rng.integers(0, len(ring)))
        walk = [ring[(start + step) % len(ring)] for step in range(length)]
        departure = float(rng.uniform(0, 200))
        dwell = rng.uniform(3, 12, size=length)
        trajectories.append(
            Trajectory(
                edges=walk,
                timestamps=list(departure + np.cumsum(dwell) - dwell[0]),
                trajectory_id=trajectory_id,
            )
        )
    return trajectories


@pytest.fixture(scope="module")
def query_mix(dataset):
    """A mixed workload with plenty of duplicates (cache contention)."""
    queries = []
    for trajectory in dataset[:8]:
        edges = list(trajectory.edges[:2])
        queries.extend(
            [
                CountQuery(edges),
                ContainsQuery(edges),
                LocateQuery(edges),
                StrictPathQuery(edges, t_start=0.0, t_end=1e9),
                CountQuery(edges),  # duplicate: exercises cache hits
            ]
        )
    return queries


@pytest.mark.parametrize("num_shards", [1, 3])
def test_threaded_run_many_matches_sequential(dataset, query_mix, num_shards):
    engine = build_engine(
        dataset,
        EngineConfig(
            backend="cinct",
            sa_sample_rate=4,
            num_shards=num_shards,
            shard_workers=1 if num_shards > 1 else None,
        ),
    )
    expected = [engine.run(query) for query in query_mix]

    def worker(_):
        return engine.run_many(list(query_mix))

    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        outcomes = list(pool.map(worker, range(N_THREADS)))
    for outcome in outcomes:
        assert outcome == expected


def test_threaded_run_many_with_cache_disabled(dataset, query_mix):
    # Same contract without the cache: every execution goes to the backend.
    engine = build_engine(
        dataset, EngineConfig(backend="cinct", sa_sample_rate=4, cache_size=0)
    )
    expected = [engine.run(query) for query in query_mix]

    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        outcomes = list(
            pool.map(lambda _: engine.run_many(list(query_mix)), range(N_THREADS))
        )
    for outcome in outcomes:
        assert outcome == expected


def _assert_cache_consistent(cache: ResultCache) -> None:
    """The invariants a lost update or torn LRU mutation would break."""
    stats = cache.stats()
    assert set(cache._entries) == set(cache._sizes)
    assert cache._payload_bytes == sum(cache._sizes.values())
    assert stats["size"] == len(cache._entries)
    assert stats["size"] <= stats["capacity"]
    assert stats["hits"] + stats["misses"] >= 0


def test_result_cache_hammer():
    cache = ResultCache(capacity=16)
    barrier = threading.Barrier(N_THREADS)
    errors: list[BaseException] = []

    def hammer(seed: int) -> None:
        rng = np.random.default_rng(seed)
        barrier.wait()
        try:
            for step in range(400):
                key = f"plan-{int(rng.integers(0, 48))}"
                action = int(rng.integers(0, 10))
                if action < 5:
                    cache.get(key)
                elif action < 9:
                    # Tuple payloads exercise the byte accounting.
                    cache.put(key, tuple(range(int(rng.integers(1, 8)))))
                elif action == 9 and step % 97 == 0:
                    cache.clear()
                else:
                    cache.stats()
        except BaseException as error:  # pragma: no cover - only on regression
            errors.append(error)

    threads = [threading.Thread(target=hammer, args=(seed,)) for seed in range(N_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    _assert_cache_consistent(cache)
    stats = cache.stats()
    assert stats["hits"] > 0 and stats["misses"] > 0


def test_result_cache_hammer_with_epoch_churn():
    cache = ResultCache(capacity=8, max_bytes=4096)
    stop = threading.Event()
    errors: list[BaseException] = []

    def mutator() -> None:
        epoch = 0
        try:
            while not stop.is_set():
                epoch += 1
                cache.sync_epoch(epoch)
        except BaseException as error:  # pragma: no cover - only on regression
            errors.append(error)

    def reader_writer(seed: int) -> None:
        rng = np.random.default_rng(seed)
        try:
            for _ in range(300):
                key = f"plan-{int(rng.integers(0, 12))}"
                cache.put(key, int(rng.integers(0, 1000)))
                cache.get(key)
        except BaseException as error:  # pragma: no cover - only on regression
            errors.append(error)

    churn = threading.Thread(target=mutator)
    workers = [
        threading.Thread(target=reader_writer, args=(seed,)) for seed in range(4)
    ]
    churn.start()
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    stop.set()
    churn.join()
    assert not errors
    _assert_cache_consistent(cache)
    assert cache.stats()["invalidations"] > 0
