"""Universal persistence: save -> load -> query round-trips for every backend."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    TrajectoryEngine,
    available_backends,
    backend_spec,
    build_engine,
    sample_paths,
)
from repro.exceptions import ConstructionError, DatasetError, IndexCorruptionError
from repro.io import load_index, save_cinct, save_index
from repro.network import grid_network
from repro.trajectories import TrajectoryDataset, straight_biased_walks

BACKENDS = available_backends()
LOCATE_BACKENDS = [name for name in BACKENDS if backend_spec(name).supports_locate]


@pytest.fixture(scope="module")
def fleet_dataset():
    network = grid_network(5, 5)
    rng = np.random.default_rng(21)
    trajectories = straight_biased_walks(
        network, n_trajectories=20, min_length=5, max_length=12, rng=rng
    )
    for trajectory in trajectories:
        departure = float(rng.uniform(0, 300))
        dwell = rng.uniform(5, 15, size=len(trajectory.edges))
        trajectory.timestamps = list(departure + np.cumsum(dwell) - dwell[0])
    return TrajectoryDataset(name="persist-fleet", trajectories=trajectories, network=network)


@pytest.fixture(scope="module")
def probe_paths(fleet_dataset):
    return sample_paths(fleet_dataset, 3, 8, seed=3)


@pytest.mark.parametrize("backend", BACKENDS)
class TestRoundTrip:
    def test_queries_survive_roundtrip(self, fleet_dataset, probe_paths, tmp_path, backend):
        config = EngineConfig(backend=backend, block_size=31, sa_sample_rate=8)
        engine = TrajectoryEngine.build(fleet_dataset, config)
        engine.save(tmp_path / "index")
        reloaded = TrajectoryEngine.load(tmp_path / "index")
        assert reloaded.backend_name == engine.backend_name
        assert reloaded.config == config
        assert reloaded.n_trajectories == engine.n_trajectories
        assert reloaded.size_in_bits() == engine.size_in_bits()
        for path in probe_paths:
            assert reloaded.count(path) == engine.count(path)
            assert reloaded.locate(path) == engine.locate(path)

    def test_strict_path_survives_roundtrip(self, fleet_dataset, probe_paths, tmp_path, backend):
        config = EngineConfig(backend=backend, block_size=31, sa_sample_rate=8)
        engine = TrajectoryEngine.build(fleet_dataset, config)
        save_index(engine, tmp_path / "index")
        reloaded = load_index(tmp_path / "index")
        assert reloaded.temporal is not None
        for path in probe_paths[:4]:
            assert reloaded.strict_path(path, 0.0, 1e9) == engine.strict_path(path, 0.0, 1e9)


@pytest.mark.parametrize("num_shards", (1, 3))
@pytest.mark.parametrize("backend", LOCATE_BACKENDS)
def test_sharded_queries_survive_roundtrip(
    fleet_dataset, probe_paths, tmp_path, backend, num_shards
):
    config = EngineConfig(
        backend=backend, block_size=31, sa_sample_rate=8, num_shards=num_shards
    )
    engine = build_engine(fleet_dataset, config)
    engine.save(tmp_path / "fleet")
    reloaded = load_index(tmp_path / "fleet")
    assert type(reloaded) is type(engine)
    assert reloaded.config == config
    assert reloaded.n_trajectories == engine.n_trajectories
    assert reloaded.size_in_bits() == engine.size_in_bits()
    for path in probe_paths:
        assert reloaded.count(path) == engine.count(path)
        assert reloaded.locate(path) == engine.locate(path)
    for path in probe_paths[:4]:
        assert reloaded.strict_path(path, 0.0, 1e9) == engine.strict_path(path, 0.0, 1e9)


def test_sharded_partitioned_growth_survives_roundtrip(fleet_dataset, tmp_path):
    config = EngineConfig(
        backend="partitioned-cinct", block_size=31, sa_sample_rate=8, num_shards=3
    )
    engine = build_engine([], config)
    trajectories = fleet_dataset.trajectories
    engine.add_batch(trajectories[:8])
    engine.add_batch(trajectories[8:])
    engine.save(tmp_path / "fleet")
    reloaded = load_index(tmp_path / "fleet")
    assert reloaded.num_shards == 3
    assert reloaded.epochs == engine.epochs
    probe = list(trajectories[10].edges[:3])
    assert reloaded.count(probe) == engine.count(probe)
    assert reloaded.locate(probe) == engine.locate(probe)
    # The reloaded fleet keeps growing with stable round-robin routing.
    reloaded.add_batch([["x1", "x2", "x3"]])
    assert reloaded.count(["x1", "x2"]) == 1
    assert reloaded.locate(["x1", "x2"])[0].trajectory_id == len(trajectories)
    reloaded.consolidate()
    assert reloaded.count(probe) == engine.count(probe)


def test_partitioned_growth_survives_roundtrip(fleet_dataset, tmp_path):
    config = EngineConfig(backend="partitioned-cinct", block_size=31, sa_sample_rate=8)
    engine = TrajectoryEngine.build([], config)
    trajectories = fleet_dataset.trajectories
    engine.add_batch(trajectories[:8])
    engine.add_batch(trajectories[8:])
    engine.save(tmp_path / "fleet")
    reloaded = TrajectoryEngine.load(tmp_path / "fleet")
    assert reloaded.n_partitions == 2
    probe = list(trajectories[10].edges[:3])
    assert reloaded.count(probe) == engine.count(probe)
    # The reloaded engine keeps growing and consolidating.
    reloaded.add_batch([["x1", "x2", "x3"]])
    assert reloaded.count(["x1", "x2"]) == 1
    reloaded.consolidate()
    assert reloaded.n_partitions == 1
    assert reloaded.count(probe) == engine.count(probe)
    assert reloaded.count(["x1", "x2"]) == 1


def test_engine_json_carries_no_raw_timestamps(fleet_dataset, tmp_path):
    # Timestamps live in the compressed timestamps.npz artefact, never as raw
    # JSON arrays inside engine.json.
    engine = TrajectoryEngine.build(fleet_dataset, EngineConfig(backend="cinct"))
    engine.save(tmp_path / "index")
    document = json.loads((tmp_path / "index" / "engine.json").read_text(encoding="utf-8"))
    assert "timestamps" not in document
    assert document["timestamps_file"] == "timestamps.npz"
    assert (tmp_path / "index" / "timestamps.npz").exists()
    reloaded = TrajectoryEngine.load(tmp_path / "index")
    assert reloaded.timestamps == engine.timestamps
    assert reloaded.timestamp_store.size_in_bits() == engine.timestamp_store.size_in_bits()


def test_legacy_json_timestamp_document_loads(fleet_dataset, tmp_path):
    # Version-1 engine.json documents (raw timestamp lists, no npz) still load.
    engine = TrajectoryEngine.build(fleet_dataset, EngineConfig(backend="cinct"))
    engine.save(tmp_path / "index")
    document_path = tmp_path / "index" / "engine.json"
    document = json.loads(document_path.read_text(encoding="utf-8"))
    document["format_version"] = 1
    del document["timestamps_file"]
    document["timestamps"] = [list(times) for times in engine.timestamps]
    document_path.write_text(json.dumps(document), encoding="utf-8")
    (tmp_path / "index" / "timestamps.npz").unlink()
    reloaded = load_index(tmp_path / "index")
    assert reloaded.timestamps == engine.timestamps
    assert reloaded.temporal is not None


def test_missing_timestamp_archive_rejected(fleet_dataset, tmp_path):
    engine = TrajectoryEngine.build(fleet_dataset, EngineConfig(backend="cinct"))
    engine.save(tmp_path / "index")
    (tmp_path / "index" / "timestamps.npz").unlink()
    with pytest.raises(IndexCorruptionError, match="timestamps.npz"):
        load_index(tmp_path / "index")


def test_missing_directory_rejected(tmp_path):
    with pytest.raises(DatasetError):
        load_index(tmp_path / "nothing-here")


def test_legacy_directory_detected(tmp_path, medium_bwt, medium_cinct):
    save_cinct(medium_cinct, medium_bwt, tmp_path / "legacy")
    with pytest.raises(DatasetError, match="legacy"):
        load_index(tmp_path / "legacy")


def test_corrupted_version_rejected(fleet_dataset, tmp_path):
    engine = TrajectoryEngine.build(fleet_dataset, EngineConfig(backend="ufmi"))
    engine.save(tmp_path / "index")
    document_path = tmp_path / "index" / "engine.json"
    document = json.loads(document_path.read_text(encoding="utf-8"))
    document["format_version"] = 999
    document_path.write_text(json.dumps(document), encoding="utf-8")
    with pytest.raises(ConstructionError):
        load_index(tmp_path / "index")


def test_unknown_config_field_rejected(fleet_dataset, tmp_path):
    engine = TrajectoryEngine.build(fleet_dataset, EngineConfig(backend="ufmi"))
    engine.save(tmp_path / "index")
    document_path = tmp_path / "index" / "engine.json"
    document = json.loads(document_path.read_text(encoding="utf-8"))
    document["config"]["mystery_knob"] = 5
    document_path.write_text(json.dumps(document), encoding="utf-8")
    with pytest.raises(ConstructionError):
        load_index(tmp_path / "index")
