"""The staged query pipeline: plan -> optimize -> execute, cache, epochs.

Covers the contract the pipeline must honour on every registered backend:
mixed-type ``run_many`` batches (with duplicates) are bit-identical to
sequential ``run`` calls, the result cache serves repeats without changing
answers, growth bumps the engine epoch and invalidates the cache, and the
epoch survives persistence (format version 3; version-2 documents load at
epoch 0).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine import (
    ContainsQuery,
    CountQuery,
    EngineConfig,
    ExtractQuery,
    LocateQuery,
    PlanExecutor,
    QueryPlan,
    StrictPathQuery,
    TrajectoryEngine,
    available_backends,
    backend_spec,
    optimize_plans,
    sample_paths,
)
from repro.exceptions import QueryError
from repro.io import load_index
from repro.network import grid_network
from repro.trajectories import TrajectoryDataset, straight_biased_walks

BACKENDS = available_backends()


@pytest.fixture(scope="module")
def fleet_dataset():
    """A timestamped fleet on a grid network, shared by every backend."""
    network = grid_network(5, 5)
    rng = np.random.default_rng(31)
    trajectories = straight_biased_walks(
        network, n_trajectories=24, min_length=5, max_length=13, rng=rng
    )
    for trajectory in trajectories:
        departure = float(rng.uniform(0, 500))
        dwell = rng.uniform(4, 18, size=len(trajectory.edges))
        trajectory.timestamps = list(departure + np.cumsum(dwell) - dwell[0])
    return TrajectoryDataset(name="pipeline-fleet", trajectories=trajectories, network=network)


@pytest.fixture(scope="module")
def growth_batch(fleet_dataset):
    """Extra timestamped trajectories for the growth/epoch cases."""
    network = fleet_dataset.network
    rng = np.random.default_rng(77)
    trajectories = straight_biased_walks(
        network, n_trajectories=6, min_length=5, max_length=10, rng=rng
    )
    for trajectory in trajectories:
        departure = float(rng.uniform(600, 900))
        dwell = rng.uniform(4, 18, size=len(trajectory.edges))
        trajectory.timestamps = list(departure + np.cumsum(dwell) - dwell[0])
    return trajectories


def mixed_workload(engine, fleet_dataset, seed=5):
    """Every query type interleaved, with deliberate duplicates."""
    paths = sample_paths(fleet_dataset, 3, 6, seed=seed)
    window_source = engine.strict_path(paths[0]) or engine.strict_path(paths[1])
    t0, t1 = (0.0, 1e9)
    if window_source and window_source[0].start_time is not None:
        t0, t1 = window_source[0].start_time, window_source[0].end_time
    queries = [
        CountQuery(paths[0]),
        StrictPathQuery(paths[1]),
        ContainsQuery(paths[0]),          # duplicate pattern, different type
        LocateQuery(paths[2]),
        CountQuery(paths[0]),             # literal duplicate
        StrictPathQuery(paths[0], t0, t1),
        ContainsQuery(paths[3]),
        LocateQuery(paths[1]),            # same pattern as the strict-path above
        CountQuery(paths[4]),
        StrictPathQuery(paths[0], 0.0, 1e9),  # same path, different window
        CountQuery(list(reversed(paths[5]))),  # likely non-occurring
    ]
    if backend_spec(engine.backend_name).supports_extract:
        queries[3:3] = [ExtractQuery(row=0, length=4)]
        queries.append(ExtractQuery(row=1, length=4))
        queries.append(ExtractQuery(row=0, length=4))  # duplicate extraction
        queries.append(ExtractQuery(row=2, length=2))  # different length group
    return queries


@pytest.mark.parametrize("backend", BACKENDS)
class TestMixedBatches:
    def test_run_many_bit_identical_to_sequential_run(self, fleet_dataset, backend):
        engine = TrajectoryEngine.build(
            fleet_dataset, EngineConfig(backend=backend, block_size=31, sa_sample_rate=8)
        )
        queries = mixed_workload(engine, fleet_dataset)
        # A cache-less twin provides the sequential reference, so neither
        # side can leak answers to the other through the cache.
        reference = TrajectoryEngine.build(
            fleet_dataset,
            EngineConfig(backend=backend, block_size=31, sa_sample_rate=8, cache_size=0),
        )
        expected = [reference.run(query) for query in queries]
        assert engine.run_many(queries) == expected
        # A second pass is served (partly) from the cache — still identical.
        assert engine.run_many(queries) == expected
        assert engine.cache_stats()["hits"] > 0

    def test_run_many_pre_and_post_growth(self, fleet_dataset, growth_batch, backend):
        if not backend_spec(backend).supports_growth:
            pytest.skip(f"{backend} cannot grow")
        engine = TrajectoryEngine.build(
            fleet_dataset, EngineConfig(backend=backend, block_size=31, sa_sample_rate=8)
        )
        queries = mixed_workload(engine, fleet_dataset)
        pre = engine.run_many(queries)
        assert pre == [engine.run(query) for query in queries]

        engine.add_batch(growth_batch)
        # The growth epoch moved, so cached pre-growth answers must not leak.
        fresh = TrajectoryEngine.build(
            list(fleet_dataset.trajectories) + list(growth_batch),
            EngineConfig(backend=backend, block_size=31, sa_sample_rate=8, cache_size=0),
        )
        post = engine.run_many(queries)
        assert post == [fresh.run(query) for query in queries]
        assert post == [engine.run(query) for query in queries]


class TestCacheSemantics:
    @pytest.fixture()
    def engine(self, fleet_dataset):
        return TrajectoryEngine.build(
            fleet_dataset, EngineConfig(backend="cinct", block_size=31, sa_sample_rate=8)
        )

    def test_repeat_queries_hit_the_cache(self, engine, fleet_dataset):
        path = sample_paths(fleet_dataset, 3, 1, seed=2)[0]
        first = engine.count(path)
        stats = engine.cache_stats()
        assert stats["misses"] >= 1
        assert engine.count(path) == first
        assert engine.cache_stats()["hits"] >= 1

    def test_contains_shares_the_count_plan(self, engine, fleet_dataset):
        path = sample_paths(fleet_dataset, 3, 1, seed=3)[0]
        count = engine.count(path)
        hits_before = engine.cache_stats()["hits"]
        assert engine.contains(path) == (count > 0)
        assert engine.cache_stats()["hits"] == hits_before + 1

    def test_strict_path_windows_share_one_locate_plan(self, engine, fleet_dataset):
        path = sample_paths(fleet_dataset, 3, 1, seed=4)[0]
        unwindowed = engine.strict_path(path)
        hits_before = engine.cache_stats()["hits"]
        engine.strict_path(path, 0.0, 1e9)
        engine.strict_path(path, 0.0, 50.0)
        assert engine.locate(path) == unwindowed
        assert engine.cache_stats()["hits"] == hits_before + 3

    def test_cache_size_zero_disables_caching(self, fleet_dataset):
        engine = TrajectoryEngine.build(
            fleet_dataset, EngineConfig(backend="cinct", cache_size=0)
        )
        path = sample_paths(fleet_dataset, 3, 1, seed=5)[0]
        assert engine.count(path) == engine.count(path)
        stats = engine.cache_stats()
        assert not stats["enabled"]
        assert stats["hits"] == 0 and stats["size"] == 0

    def test_lru_eviction_is_bounded(self, fleet_dataset):
        engine = TrajectoryEngine.build(
            fleet_dataset, EngineConfig(backend="cinct", cache_size=3)
        )
        for path in sample_paths(fleet_dataset, 3, 8, seed=6):
            engine.count(path)
        stats = engine.cache_stats()
        assert stats["size"] <= 3
        assert stats["evictions"] >= 1

    def test_disable_at_runtime(self, engine, fleet_dataset):
        path = sample_paths(fleet_dataset, 3, 1, seed=7)[0]
        engine.count(path)
        engine.result_cache.disable()
        assert engine.cache_stats()["size"] == 0
        assert not engine.result_cache.enabled
        hits_before = engine.cache_stats()["hits"]
        engine.count(path)
        assert engine.cache_stats()["hits"] == hits_before

    def test_byte_budget_bounds_payload_bytes(self, fleet_dataset):
        # A budget that fits a couple of locate payloads but not many: the
        # byte dimension must evict even though the entry count is nowhere
        # near the cache_size bound.
        engine = TrajectoryEngine.build(
            fleet_dataset,
            EngineConfig(
                backend="cinct", sa_sample_rate=8, cache_size=1024, cache_max_bytes=600
            ),
        )
        for path in sample_paths(fleet_dataset, 2, 10, seed=12):
            engine.locate(path)
        stats = engine.cache_stats()
        assert stats["max_bytes"] == 600
        assert stats["payload_bytes"] <= 600
        assert stats["size"] < 10  # far below the entry bound, bytes evicted
        assert stats["evictions"] >= 1

    def test_oversized_payload_is_never_stored(self, fleet_dataset):
        # A single payload bigger than the whole budget is not cached at all
        # (storing it would evict everything and still not fit).
        engine = TrajectoryEngine.build(
            fleet_dataset,
            EngineConfig(
                backend="cinct", sa_sample_rate=8, cache_size=1024, cache_max_bytes=100
            ),
        )
        path = sample_paths(fleet_dataset, 2, 1, seed=13)[0]
        assert engine.count(path) >= 0  # an int payload fits the budget
        assert engine.cache_stats()["size"] == 1
        matches = engine.locate(path)
        assert len(matches) >= 1  # big match-tuple payload exceeds the budget
        assert engine.cache_stats()["size"] == 1
        assert engine.locate(path) == matches  # still correct, just uncached

    def test_byte_accounting_returns_to_zero_on_invalidation(self, fleet_dataset):
        engine = TrajectoryEngine.build(
            fleet_dataset,
            EngineConfig(
                backend="partitioned-cinct",
                sa_sample_rate=8,
                cache_max_bytes=1 << 20,
            ),
        )
        for path in sample_paths(fleet_dataset, 3, 4, seed=14):
            engine.locate(path)
        assert engine.cache_stats()["payload_bytes"] > 0
        engine.add_batch([["y1", "y2", "y3"]])
        assert engine.cache_stats()["payload_bytes"] == 0
        assert engine.cache_stats()["size"] == 0


class TestContainsKind:
    """The dedicated contains plan reaches backend early-exit paths."""

    @pytest.fixture()
    def engine(self, fleet_dataset):
        engine = TrajectoryEngine.build(
            fleet_dataset,
            EngineConfig(backend="partitioned-cinct", block_size=31, sa_sample_rate=8),
        )
        engine.add_batch(fleet_dataset.trajectories[:4])  # a second partition
        return engine

    @pytest.fixture()
    def spy(self, engine, monkeypatch):
        calls = {"contains": 0, "count_many": 0}
        backend = engine.backend
        real_contains, real_count_many = backend.contains, backend.count_many

        def spy_contains(pattern, **kwargs):
            calls["contains"] += 1
            return real_contains(pattern, **kwargs)

        def spy_count_many(patterns, **kwargs):
            calls["count_many"] += 1
            return real_count_many(patterns, **kwargs)

        monkeypatch.setattr(backend, "contains", spy_contains)
        monkeypatch.setattr(backend, "count_many", spy_count_many)
        return calls

    def test_contains_executes_backend_contains_not_count(
        self, engine, fleet_dataset, spy
    ):
        path = sample_paths(fleet_dataset, 3, 1, seed=15)[0]
        assert engine.contains(path)
        assert spy == {"contains": 1, "count_many": 0}

    def test_cached_count_answers_contains_without_backend(
        self, engine, fleet_dataset, spy
    ):
        path = sample_paths(fleet_dataset, 3, 1, seed=16)[0]
        count = engine.count(path)
        assert engine.contains(path) == (count > 0)
        assert spy["contains"] == 0  # served from the count twin in the cache

    def test_same_batch_count_shares_with_contains(self, engine, fleet_dataset, spy):
        path = sample_paths(fleet_dataset, 3, 1, seed=17)[0]
        results = engine.run_many([ContainsQuery(path), CountQuery(path)])
        assert results[0].found == (results[1].count > 0)
        assert spy == {"contains": 0, "count_many": 1}

    def test_contains_batch_runs_one_vectorized_pass(self, engine, fleet_dataset, spy):
        # Several distinct contains misses become one count_many call (not a
        # scalar loop), and the computed counts warm the count twins.
        paths = sample_paths(fleet_dataset, 3, 4, seed=18)
        results = engine.run_many([ContainsQuery(path) for path in paths])
        assert spy == {"contains": 0, "count_many": 1}
        counts = engine.count_many(paths)
        assert spy["count_many"] == 1  # served from the cached count twins
        assert [r.found for r in results] == [count > 0 for count in counts]

    def test_partitioned_contains_encoded_short_circuits(self, engine, fleet_dataset):
        # The any-partition short-circuit: a pattern present in the first
        # partition must never consult the second.
        partitioned = engine.backend.partitioned
        consulted = []

        def instrument(partition):
            original = partition.index.contains

            def spy_contains(symbols):
                consulted.append(partition.first_trajectory_id)
                return original(symbols)

            partition.index.contains = spy_contains

        for partition in partitioned.partitions():
            instrument(partition)
        path = list(fleet_dataset.trajectories[0].edges[:2])
        pattern = partitioned.alphabet.encode_path(path)
        assert partitioned.contains_encoded(pattern)
        assert consulted == [0]


class TestEpochs:
    def test_growth_bumps_epoch_and_invalidates(self, fleet_dataset, growth_batch):
        engine = TrajectoryEngine.build(
            fleet_dataset,
            EngineConfig(backend="partitioned-cinct", block_size=31, sa_sample_rate=8),
        )
        assert engine.epoch == 0
        probe = list(growth_batch[0].edges[:2])
        baseline = engine.count(probe)
        engine.add_batch(growth_batch)
        assert engine.epoch == 1
        assert engine.result_cache.epoch == 1
        assert engine.cache_stats()["invalidations"] == 1
        # The post-growth answer reflects the new trajectories, not the cache.
        assert engine.count(probe) >= max(baseline, 1)
        engine.consolidate()
        assert engine.epoch == 2

    def test_epoch_persists_at_current_format_version(
        self, fleet_dataset, growth_batch, tmp_path
    ):
        engine = TrajectoryEngine.build(
            fleet_dataset,
            EngineConfig(backend="partitioned-cinct", block_size=31, sa_sample_rate=8),
        )
        engine.add_batch(growth_batch)
        engine.consolidate()
        engine.save(tmp_path / "fleet")
        document = json.loads((tmp_path / "fleet" / "engine.json").read_text(encoding="utf-8"))
        assert document["format_version"] == 5
        assert document["epoch"] == 2
        reloaded = TrajectoryEngine.load(tmp_path / "fleet")
        assert reloaded.epoch == 2
        reloaded.add_batch([["x1", "x2"]])
        assert reloaded.epoch == 3

    def test_version_2_documents_load_at_epoch_zero(self, fleet_dataset, tmp_path):
        engine = TrajectoryEngine.build(fleet_dataset, EngineConfig(backend="cinct"))
        engine.save(tmp_path / "index")
        document_path = tmp_path / "index" / "engine.json"
        document = json.loads(document_path.read_text(encoding="utf-8"))
        document["format_version"] = 2
        del document["epoch"]
        document_path.write_text(json.dumps(document), encoding="utf-8")
        reloaded = load_index(tmp_path / "index")
        assert reloaded.epoch == 0
        path = sample_paths(fleet_dataset, 3, 1, seed=8)[0]
        assert reloaded.count(path) == engine.count(path)


class TestPlanLayer:
    def test_contains_plans_to_dedicated_kind_with_count_twin(self, fleet_dataset):
        engine = TrajectoryEngine.build(fleet_dataset, EngineConfig(backend="cinct"))
        planner = engine._planner
        path = sample_paths(fleet_dataset, 3, 1, seed=9)[0]
        count_plan = planner.plan(CountQuery(path)).plan
        contains_plan = planner.plan(ContainsQuery(path)).plan
        # A dedicated kind (reaching backend early-exit contains paths) whose
        # count twin names the count plan for cache sharing.
        assert contains_plan.kind == "contains"
        assert contains_plan != count_plan
        assert contains_plan.pattern == count_plan.pattern
        assert contains_plan.count_twin() == count_plan

    def test_strict_path_canonicalizes_to_locate(self, fleet_dataset):
        engine = TrajectoryEngine.build(fleet_dataset, EngineConfig(backend="cinct"))
        planner = engine._planner
        path = sample_paths(fleet_dataset, 3, 1, seed=10)[0]
        locate_plan = planner.plan(LocateQuery(path)).plan
        windowed = planner.plan(StrictPathQuery(path, 0.0, 10.0)).plan
        assert windowed.windowed and not locate_plan.windowed
        assert windowed.canonical() == locate_plan

    def test_planning_raises_before_execution(self, fleet_dataset):
        engine = TrajectoryEngine.build(fleet_dataset, EngineConfig(backend="linear-scan"))
        with pytest.raises(QueryError, match="extract is not supported"):
            engine.run_many([ExtractQuery(row=0, length=2)])
        with pytest.raises(QueryError, match="unsupported query type"):
            engine.run_many([object()])  # type: ignore[list-item]

    def test_invalid_extract_fails_at_plan_time(self, fleet_dataset):
        # An out-of-range extraction aborts the whole batch during normalize:
        # nothing executes, so nothing lands in the cache.
        engine = TrajectoryEngine.build(fleet_dataset, EngineConfig(backend="cinct"))
        path = sample_paths(fleet_dataset, 3, 1, seed=11)[0]
        with pytest.raises(QueryError, match="out of range"):
            engine.run_many([CountQuery(path), ExtractQuery(row=engine.length, length=4)])
        assert engine.cache_stats()["size"] == 0
        with pytest.raises(QueryError, match="non-negative"):
            engine.run(ExtractQuery(row=0, length=-1))

    def test_optimize_groups_and_dedupes(self):
        count_a = QueryPlan("count", pattern=(2, 3))
        count_b = QueryPlan("count", pattern=(3, 4))
        contains_a = QueryPlan("contains", pattern=(2, 3))
        locate = QueryPlan("locate", pattern=(2, 3))
        extract_4 = QueryPlan("extract", row=0, length=4)
        extract_4b = QueryPlan("extract", row=1, length=4)
        extract_2 = QueryPlan("extract", row=0, length=2)
        groups = optimize_plans(
            [
                count_a,
                count_b,
                count_a,
                contains_a,
                contains_a,
                locate,
                extract_4,
                extract_4b,
                extract_4,
                extract_2,
            ]
        )
        assert groups.count == [count_a, count_b]
        assert groups.contains == [contains_a]
        assert groups.locate == [locate]
        assert list(groups.extract) == [4, 2]
        assert groups.extract[4] == [extract_4, extract_4b]
        assert groups.n_plans == 7

    def test_backends_satisfy_the_plan_executor_protocol(self, fleet_dataset):
        for backend in BACKENDS:
            engine = TrajectoryEngine.build(fleet_dataset, EngineConfig(backend=backend))
            assert isinstance(engine.backend, PlanExecutor)


def test_available_backends_is_sorted_and_stable():
    assert BACKENDS == sorted(BACKENDS)
    assert available_backends() == BACKENDS
