"""Tests for the shared benchmark harness."""

from __future__ import annotations

import pytest

from repro.bench import (
    DEFAULT_VARIANTS,
    build_all_indexes,
    build_index,
    bwt_of_bundle,
    format_table,
    measure_extraction_time,
    measure_search_time,
    run_size_time_experiment,
    sample_query_workload,
    summarise_winner,
)
from repro.datasets import chess_like


@pytest.fixture(scope="module")
def tiny_bundle():
    return chess_like(scale=0.06)


@pytest.fixture(scope="module")
def tiny_bwt(tiny_bundle):
    return bwt_of_bundle(tiny_bundle)


class TestBuilders:
    def test_default_variant_list(self):
        assert DEFAULT_VARIANTS[0] == "CiNCT"
        assert len(DEFAULT_VARIANTS) == 6

    @pytest.mark.parametrize("name", ["CiNCT", "UFMI", "ICB-Huff"])
    def test_build_index_by_name(self, name, tiny_bwt):
        built = build_index(name, tiny_bwt, block_size=31)
        assert built.name == name
        assert built.build_seconds >= 0
        assert built.bits_per_symbol() > 0

    def test_block_size_attached_only_where_meaningful(self, tiny_bwt):
        assert build_index("CiNCT", tiny_bwt, block_size=31).block_size == 31
        assert build_index("UFMI", tiny_bwt).block_size is None

    def test_build_all(self, tiny_bwt):
        built = build_all_indexes(tiny_bwt, variants=("CiNCT", "UFMI"))
        assert [b.name for b in built] == ["CiNCT", "UFMI"]


class TestWorkloadAndTiming:
    def test_sampled_workload(self, tiny_bwt):
        patterns = sample_query_workload(tiny_bwt, pattern_length=5, n_patterns=12, seed=1)
        assert len(patterns) == 12
        assert all(len(p) == 5 for p in patterns)

    def test_measure_search_time(self, tiny_bwt):
        built = build_index("CiNCT", tiny_bwt, block_size=31)
        patterns = sample_query_workload(tiny_bwt, pattern_length=5, n_patterns=5, seed=1)
        timing = measure_search_time(built.index, patterns)
        assert timing.mean_seconds > 0
        assert timing.mean_microseconds == pytest.approx(timing.mean_seconds * 1e6)
        assert timing.n_queries == 5

    def test_measure_search_time_empty_workload(self, tiny_bwt):
        built = build_index("UFMI", tiny_bwt)
        with pytest.raises(ValueError):
            measure_search_time(built.index, [])

    def test_measure_extraction_time(self, tiny_bwt):
        built = build_index("CiNCT", tiny_bwt, block_size=31)
        per_symbol = measure_extraction_time(built.index, length=50)
        assert per_symbol > 0
        with pytest.raises(ValueError):
            measure_extraction_time(built.index, length=0)


class TestExperimentRunner:
    def test_records_cover_variants_and_blocks(self, tiny_bundle):
        records = run_size_time_experiment(
            tiny_bundle,
            variants=("CiNCT", "ICB-Huff", "UFMI"),
            block_sizes=(31, 63),
            pattern_length=5,
            n_patterns=5,
        )
        # CiNCT and ICB-Huff appear once per block size, UFMI once.
        assert len(records) == 2 + 2 + 1
        methods = {record.method for record in records}
        assert methods == {"CiNCT", "ICB-Huff", "UFMI"}
        for record in records:
            assert record.bits_per_symbol > 0
            assert record.search_time_us is not None and record.search_time_us > 0

    def test_as_row_and_table_formatting(self, tiny_bundle):
        records = run_size_time_experiment(
            tiny_bundle, variants=("CiNCT",), block_sizes=(63,), pattern_length=5, n_patterns=3
        )
        rows = [record.as_row() for record in records]
        table = format_table(rows, title="demo")
        assert "demo" in table
        assert "bits/symbol" in table
        assert "CiNCT" in table

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_summarise_winner(self, tiny_bundle):
        records = run_size_time_experiment(
            tiny_bundle, variants=("CiNCT", "UFMI"), block_sizes=(63,), pattern_length=5, n_patterns=3
        )
        smallest = summarise_winner(records, lambda r: r.bits_per_symbol)
        assert smallest.method in {"CiNCT", "UFMI"}
        with pytest.raises(ValueError):
            summarise_winner([], lambda r: 0.0)
