"""LSM-style ingest fast path: tail parity, compaction, crash safety.

The contract under test: an engine ingesting through the mutable tail answers
every query type bit-identically to a monolithic build over the same
trajectories — before compaction (tail-only), after compaction (sealed
partitions), after a save/load round-trip, while a background compaction is
racing concurrent queries, and after a crash injected at the compaction swap
point (which must leave the pre-swap view serving and loadable).  Tail
appends never pay a suffix sort, and a background compaction bumps only the
compacted shard's epoch.
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import partitioned as partitioned_module
from repro.core.partitioned import COMPACTION_SWAP_STAGE, PartitionedCiNCT
from repro.engine import CountQuery, EngineConfig, build_engine
from repro.exceptions import QueryError
from repro.io import load_index
from repro.reliability import faults
from repro.service import (
    ServiceConfig,
    TrajectoryService,
    ingest_from_json,
    serve_in_background,
)
from repro.trajectories import Trajectory


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear_faults()
    yield
    faults.clear_faults()


def _make_trajectories(n, seed=42):
    """Overlapping timestamped ring walks so probe paths repeat."""
    rng = np.random.default_rng(seed)
    ring = [f"e{i}" for i in range(10)]
    trajectories = []
    for _ in range(n):
        length = int(rng.integers(4, 9))
        start = int(rng.integers(0, len(ring)))
        walk = [ring[(start + step) % len(ring)] for step in range(length)]
        departure = float(rng.uniform(0, 200))
        dwell = rng.uniform(2, 10, size=length)
        trajectories.append(
            Trajectory(edges=walk, timestamps=list(departure + np.cumsum(dwell) - dwell[0]))
        )
    return trajectories


SEED_BATCH = _make_trajectories(6, seed=7)
STREAM_BATCHES = [_make_trajectories(3, seed=s) for s in (11, 12, 13, 14)]
ALL_TRAJECTORIES = SEED_BATCH + [t for batch in STREAM_BATCHES for t in batch]

PROBE_PATHS = [["e0", "e1"], ["e3", "e4", "e5"], ["e9", "e0"], ["e7"]]


def _oracle():
    """Monolithic single-partition build over every trajectory (no tail)."""
    return build_engine(ALL_TRAJECTORIES, EngineConfig(backend="cinct", sa_sample_rate=4))


def _match_keys(matches):
    return sorted(
        (m.trajectory_id, m.start_edge_index, m.end_edge_index, m.start_time, m.end_time)
        for m in matches
    )


def assert_parity(engine, oracle):
    """Every query type answers identically to the monolithic oracle."""
    assert engine.n_trajectories == oracle.n_trajectories
    for path in PROBE_PATHS:
        assert engine.count(path) == oracle.count(path), path
        assert engine.contains(path) == oracle.contains(path), path
        assert _match_keys(engine.locate(path)) == _match_keys(oracle.locate(path)), path
        assert _match_keys(engine.strict_path(path, 0.0, 1e9)) == _match_keys(
            oracle.strict_path(path, 0.0, 1e9)
        ), path
    if engine.spec.supports_extract:  # partitioned backends don't extract
        for row in (0, len(ALL_TRAJECTORIES) // 2, len(ALL_TRAJECTORIES) - 1):
            assert engine.extract(row, 3) == oracle.extract(row, 3), row


def _tail_config(num_shards=1, **overrides):
    base = dict(
        backend="partitioned-cinct",
        sa_sample_rate=4,
        num_shards=num_shards,
        shard_executor="serial" if num_shards > 1 else "threads",
        tail_max_trajectories=10_000,
        compaction="inline",
    )
    base.update(overrides)
    return EngineConfig(**base)


def _ingest_stream(engine):
    for batch in STREAM_BATCHES:
        engine.add_batch(batch)


class TestLifecycleParity:
    """All query types x sharded/unsharded x pre/post-compaction x reload."""

    @pytest.mark.parametrize("num_shards", [1, 2])
    def test_pre_compaction_tail_only(self, num_shards):
        engine = build_engine(SEED_BATCH, _tail_config(num_shards))
        _ingest_stream(engine)
        ingest = engine.stats()["ingest"]
        assert ingest["tail"]["trajectories"] == len(ALL_TRAJECTORIES)
        assert ingest["compaction"]["count"] == 0
        assert_parity(engine, _oracle())

    @pytest.mark.parametrize("num_shards", [1, 2])
    def test_post_compaction(self, num_shards):
        engine = build_engine(
            SEED_BATCH, _tail_config(num_shards, tail_max_trajectories=4)
        )
        _ingest_stream(engine)
        ingest = engine.stats()["ingest"]
        assert ingest["compaction"]["count"] >= 1
        assert_parity(engine, _oracle())

    @pytest.mark.parametrize("num_shards", [1, 2])
    @pytest.mark.parametrize("tail_max", [10_000, 4])
    def test_post_reload(self, num_shards, tail_max, tmp_path):
        engine = build_engine(
            SEED_BATCH, _tail_config(num_shards, tail_max_trajectories=tail_max)
        )
        _ingest_stream(engine)
        before = engine.stats()["ingest"]
        engine.save(tmp_path / "index")
        reloaded = load_index(tmp_path / "index")
        after = reloaded.stats()["ingest"]
        assert after["tail"]["trajectories"] == before["tail"]["trajectories"]
        assert_parity(reloaded, _oracle())

    def test_reloaded_tail_keeps_growing(self, tmp_path):
        engine = build_engine(SEED_BATCH, _tail_config())
        engine.save(tmp_path / "index")
        reloaded = load_index(tmp_path / "index")
        _ingest_stream(reloaded)
        assert_parity(reloaded, _oracle())


class TestNoSuffixSortOnAppend:
    def test_tail_append_never_builds_bwt(self, monkeypatch):
        engine = build_engine(SEED_BATCH, _tail_config())

        def _forbidden(*args, **kwargs):
            raise AssertionError("tail add_batch must not run a suffix sort")

        monkeypatch.setattr(
            partitioned_module, "burrows_wheeler_transform", _forbidden
        )
        _ingest_stream(engine)  # O(batch) appends only
        assert engine.count(["e0", "e1"]) == _oracle().count(["e0", "e1"])

    def test_legacy_path_still_builds_bwt(self, monkeypatch):
        engine = build_engine(SEED_BATCH, EngineConfig(backend="partitioned-cinct"))

        def _forbidden(*args, **kwargs):
            raise AssertionError("boom")

        monkeypatch.setattr(
            partitioned_module, "burrows_wheeler_transform", _forbidden
        )
        with pytest.raises(AssertionError, match="boom"):
            engine.add_batch(STREAM_BATCHES[0])


class TestBackgroundCompaction:
    def test_parity_after_background_compaction(self):
        engine = build_engine(
            SEED_BATCH, _tail_config(tail_max_trajectories=4, compaction="background")
        )
        _ingest_stream(engine)
        assert engine.wait_for_compaction(timeout=30.0)
        assert engine.stats()["ingest"]["compaction"]["count"] >= 1
        assert_parity(engine, _oracle())

    def test_bumps_only_the_compacted_shards_epoch(self):
        config = _tail_config(
            num_shards=3, tail_max_trajectories=3, compaction="background"
        )
        engine = build_engine(SEED_BATCH[:3], config)  # one trajectory per shard
        assert engine.wait_for_compaction(timeout=30.0)
        base = list(engine.epochs)
        # Round-robin by global id: ids 3,4,5,6 land on shards 0,1,2,0 —
        # only shard 0 reaches the 3-trajectory threshold and compacts.
        for trajectory in ALL_TRAJECTORIES[3:7]:
            engine.add_batch([trajectory])
        assert engine.wait_for_compaction(timeout=30.0)
        deltas = [epoch - b for epoch, b in zip(engine.epochs, base)]
        per_shard = engine.stats()["ingest"]["shards"]
        compactions = [entry["compaction"]["count"] for entry in per_shard]
        assert compactions == [1, 0, 0]
        # Every shard's epoch moved by its own adds + its own compactions —
        # the background swap bumped only the compacted shard, and the
        # untouched shards' epochs (and caches) survived.
        adds = [2, 1, 1]
        assert deltas == [a + c for a, c in zip(adds, compactions)]

    def test_consistent_counts_under_concurrent_queries(self):
        engine = build_engine(
            SEED_BATCH, _tail_config(tail_max_trajectories=4, compaction="background")
        )
        probe = ["e0", "e1"]
        # Valid answers are exactly the prefix counts: after the seed batch,
        # then after each streamed batch.  Any other observation means a
        # query saw a torn (mid-swap or double-counted) view.
        prefixes = [SEED_BATCH]
        for batch in STREAM_BATCHES:
            prefixes.append(prefixes[-1] + batch)
        valid = {
            build_engine(prefix, EngineConfig(backend="cinct")).count(probe)
            for prefix in prefixes
        }
        observed = []
        errors = []
        stop = threading.Event()

        def _query_loop():
            while not stop.is_set():
                try:
                    results = engine.run_many([CountQuery(probe)] * 3)
                except Exception as error:  # noqa: BLE001 - recorded for the assert
                    errors.append(error)
                    return
                observed.extend(result.count for result in results)

        thread = threading.Thread(target=_query_loop)
        thread.start()
        try:
            _ingest_stream(engine)
            assert engine.wait_for_compaction(timeout=30.0)
        finally:
            stop.set()
            thread.join(timeout=30.0)
        assert not errors, errors
        assert observed, "query thread never ran"
        assert set(observed) <= valid, (set(observed), valid)
        assert engine.count(probe) == _oracle().count(probe)


class TestCrashMidCompaction:
    def test_crash_at_swap_keeps_serving_and_loadable(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SAVE_CRASH", COMPACTION_SWAP_STAGE)
        faults.reload_env()
        engine = build_engine(SEED_BATCH, _tail_config(tail_max_trajectories=4))
        _ingest_stream(engine)  # every seal attempt dies at the swap point
        ingest = engine.stats()["ingest"]
        assert ingest["compaction"]["count"] == 0
        assert ingest["compaction"]["failures"] >= 1
        assert ingest["tail"]["trajectories"] == len(ALL_TRAJECTORIES)
        assert_parity(engine, _oracle())  # pre-swap view still serves
        engine.save(tmp_path / "index")
        monkeypatch.delenv("REPRO_SAVE_CRASH")
        faults.clear_faults()
        reloaded = load_index(tmp_path / "index")
        assert_parity(reloaded, _oracle())
        # With the fault gone the next batch seals the backlog successfully.
        reloaded.add_batch(_make_trajectories(2, seed=99))
        assert reloaded.stats()["ingest"]["compaction"]["count"] >= 1

    def test_crash_then_recovery_in_process(self):
        partitioned = PartitionedCiNCT(tail_max_trajectories=3, sa_sample_rate=4)
        with faults.save_crash(COMPACTION_SWAP_STAGE):
            partitioned.add_batch([["a", "b", "c"], ["b", "c"], ["c", "a"]])
        stats = partitioned.ingest_stats()
        assert stats["compaction"]["failures"] == 1
        assert stats["compaction"]["last_error"]
        assert partitioned.count(["b", "c"]) == 2
        partitioned.add_batch([["a", "b"]])  # fault cleared: seal succeeds
        assert partitioned.ingest_stats()["compaction"]["count"] == 1
        assert partitioned.count(["b", "c"]) == 2
        assert partitioned.count(["a", "b"]) == 2  # t0 and the new t3


class TestIngestProtocol:
    def test_parses_typed_trajectories(self):
        batch = ingest_from_json(
            {
                "trajectories": [
                    {"edges": ["e1", "e2"], "timestamps": [0, 30.5]},
                    {"edges": [7, 8]},
                ]
            }
        )
        assert [t.edges for t in batch] == [["e1", "e2"], [7, 8]]
        assert batch[0].timestamps == [0.0, 30.5]
        assert batch[1].timestamps is None

    @pytest.mark.parametrize(
        "document",
        [
            None,
            [],
            {},
            {"trajectories": []},
            {"trajectories": [["e1"]]},
            {"trajectories": [{"edges": []}]},
            {"trajectories": [{"edges": ["e1", True]}]},
            {"trajectories": [{"edges": ["e1"], "timestamps": [1.0, 2.0]}]},
            {"trajectories": [{"edges": ["e1"], "timestamps": ["soon"]}]},
        ],
    )
    def test_rejects_malformed_documents(self, document):
        with pytest.raises(QueryError):
            ingest_from_json(document)


def _post(url, document):
    request = urllib.request.Request(
        url,
        data=json.dumps(document).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestIngestOverHttp:
    def test_ingested_batch_is_immediately_queryable(self):
        engine = build_engine(SEED_BATCH, _tail_config(tail_max_trajectories=8))
        service_config = ServiceConfig(port=0, batch_window_ms=1)
        with serve_in_background(engine, service_config) as handle:
            before = engine.count(["e0", "e1"])
            status, body = _post(
                handle.url + "/ingest",
                {"trajectories": [{"edges": ["e0", "e1"], "timestamps": [0.0, 5.0]}]},
            )
            assert status == 200
            assert body["added"] == 1
            assert body["n_trajectories"] == len(SEED_BATCH) + 1
            status, answer = _post(
                handle.url + "/query", {"type": "count", "path": ["e0", "e1"]}
            )
            assert status == 200
            assert answer["count"] == before + 1
            # Push past the tail threshold: /stats must show the compaction.
            for batch in STREAM_BATCHES:
                status, _ = _post(
                    handle.url + "/ingest",
                    {"trajectories": [{"edges": list(t.edges)} for t in batch]},
                )
                assert status == 200
            with urllib.request.urlopen(handle.url + "/stats", timeout=30) as response:
                stats = json.loads(response.read())
            assert stats["engine"]["ingest"]["compaction"]["count"] >= 1
            service_ingest = stats["service"]["ingest"]
            assert service_ingest["batches"] == 1 + len(STREAM_BATCHES)
            assert service_ingest["trajectories"] == 1 + sum(
                len(batch) for batch in STREAM_BATCHES
            )

    def test_malformed_and_misrouted_ingest(self):
        engine = build_engine(SEED_BATCH, _tail_config())
        with serve_in_background(engine, ServiceConfig(port=0)) as handle:
            status, body = _post(handle.url + "/ingest", {"trajectories": []})
            assert status == 400
            assert body["reason"] == "bad_request"
            status, body = _post(
                handle.url + "/ingest",
                {"trajectories": [{"edges": ["e1", "e2"], "timestamps": [9.0, 1.0]}]},
            )
            assert status == 400  # decreasing timestamps -> ConstructionError
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(handle.url + "/ingest", timeout=30)
            assert excinfo.value.code == 405

    def test_ingest_sheds_while_draining(self):
        engine = build_engine(SEED_BATCH, _tail_config())

        async def scenario():
            service = TrajectoryService(engine, ServiceConfig(port=0))
            await service.coalescer.aclose()
            return await service._handle_ingest(
                b'{"trajectories": [{"edges": ["e1"]}]}'
            )

        status, body = asyncio.run(scenario())
        assert status == 503
        assert body["reason"] == "shutdown"
        assert body["retriable"] is True
