"""Zero-copy loads: ``load_index(..., mmap=True)`` maps artefacts read-only.

The contract under test: a memory-mapped engine answers every query
bit-identically to a fully deserialized one, the large immutable arrays are
genuine read-only ``np.memmap`` windows into the saved ``.npz`` archives
(so N shard worker processes share one page-cache copy), and growth on a
mapped engine **copies on grow** — the on-disk artefact bytes never change
underneath other processes mapping the same files.  Checksums, the v5
layout and compressed legacy archives all keep working.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    ContainsQuery,
    CountQuery,
    EngineConfig,
    ExtractQuery,
    LocateQuery,
    StrictPathQuery,
    build_engine,
)
from repro.exceptions import IndexCorruptionError
from repro.io import load_index, save_index
from repro.io.npzutil import load_npz_arrays
from repro.network import grid_network
from repro.temporal.store import TimestampStore
from repro.trajectories import TrajectoryDataset, straight_biased_walks

#: Backends covering each artefact family: BWT archives (cinct + an FM
#: baseline), per-partition archives, and the raw trajectory string.
MMAP_BACKENDS = ("cinct", "ufmi", "partitioned-cinct", "linear-scan")


@pytest.fixture(scope="module")
def fleet_dataset():
    network = grid_network(5, 5)
    rng = np.random.default_rng(83)
    trajectories = straight_biased_walks(
        network, n_trajectories=16, min_length=4, max_length=9, rng=rng
    )
    for trajectory in trajectories:
        departure = float(rng.uniform(0, 300))
        dwell = rng.uniform(4, 16, size=len(trajectory.edges))
        trajectory.timestamps = list(departure + np.cumsum(dwell) - dwell[0])
    return TrajectoryDataset(name="mmap-fleet", trajectories=trajectories, network=network)


@pytest.fixture(scope="module")
def walks(fleet_dataset):
    return [list(t.edges) for t in fleet_dataset.trajectories]


def _mixed_queries(walks, *, extract: bool):
    queries = [
        CountQuery(walks[0][:2]),
        ContainsQuery(walks[3][1:3]),
        LocateQuery(walks[5][:2]),
        StrictPathQuery(walks[2][:3]),
        CountQuery(list(reversed(walks[1][:3]))),  # mostly non-occurring
    ]
    if extract:
        queries.append(ExtractQuery(row=5, length=3))
    return queries


def _mapped_artefact(engine, backend: str):
    """The large immutable array the mmap load should have left on disk."""
    if backend == "linear-scan":
        return engine.backend.trajectory_string.text
    if backend == "partitioned-cinct":
        partition = next(iter(engine.backend.partitioned.partitions()))
        return partition.bwt_result.bwt
    return engine.backend.bwt_result.bwt


# --------------------------------------------------------------------------- #
# single-engine parity
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", MMAP_BACKENDS)
def test_mmap_load_is_bit_identical(fleet_dataset, walks, backend, tmp_path):
    config = EngineConfig(backend=backend, block_size=31, sa_sample_rate=8, cache_size=0)
    engine = build_engine(fleet_dataset, config)
    save_index(engine, tmp_path / "idx")
    plain = load_index(tmp_path / "idx")
    mapped = load_index(tmp_path / "idx", mmap=True)

    extract = backend in ("cinct", "ufmi")  # the locate+extract capable ones
    queries = _mixed_queries(walks, extract=extract)
    assert mapped.run_many(queries) == plain.run_many(queries) == engine.run_many(queries)
    assert mapped.timestamp_store.as_lists() == plain.timestamp_store.as_lists()

    # The big array really is a read-only window, not a deserialized copy...
    artefact = _mapped_artefact(mapped, backend)
    assert isinstance(artefact, np.memmap)
    # ...and the non-mmap load really is a plain in-memory array.
    assert not isinstance(_mapped_artefact(plain, backend), np.memmap)


@pytest.mark.parametrize("backend", MMAP_BACKENDS)
def test_mapped_arrays_reject_writes(fleet_dataset, backend, tmp_path):
    config = EngineConfig(backend=backend, block_size=31, sa_sample_rate=8)
    save_index(build_engine(fleet_dataset, config), tmp_path / "idx")
    mapped = load_index(tmp_path / "idx", mmap=True)
    artefact = _mapped_artefact(mapped, backend)
    with pytest.raises((ValueError, OSError)):
        artefact[0] = artefact[0]  # mode "r": any write-through must raise


# --------------------------------------------------------------------------- #
# sharded fleet + copy-on-grow
# --------------------------------------------------------------------------- #
def test_sharded_mmap_growth_copies_instead_of_writing_through(
    fleet_dataset, walks, tmp_path
):
    config = EngineConfig(
        backend="partitioned-cinct",
        num_shards=3,
        block_size=31,
        sa_sample_rate=8,
        cache_size=0,
    )
    fleet = build_engine(fleet_dataset, config)
    save_index(fleet, tmp_path / "fleet")
    plain = load_index(tmp_path / "fleet")
    mapped = load_index(tmp_path / "fleet", mmap=True)
    queries = _mixed_queries(walks, extract=False)
    assert mapped.run_many(queries) == plain.run_many(queries) == fleet.run_many(queries)

    on_disk = {
        path: path.read_bytes()
        for path in sorted((tmp_path / "fleet").rglob("*"))
        if path.is_file()
    }
    growth = [[1, 2, 3, 4], [2, 3, 4, 5, 6], [3, 4, 5]]
    mapped.add_batch(growth)
    plain.add_batch(growth)
    mapped.consolidate()
    plain.consolidate()
    grown_queries = queries + [CountQuery([2, 3, 4]), LocateQuery([3, 4])]
    assert mapped.run_many(grown_queries) == plain.run_many(grown_queries)

    # Copy-on-grow: the artefacts other processes may be mapping are intact.
    after = {
        path: path.read_bytes()
        for path in sorted((tmp_path / "fleet").rglob("*"))
        if path.is_file()
    }
    assert on_disk == after

    # A grown, mapped fleet re-saves to a fresh directory and round-trips.
    save_index(mapped, tmp_path / "fleet2")
    reloaded = load_index(tmp_path / "fleet2", mmap=True)
    assert reloaded.run_many(grown_queries) == plain.run_many(grown_queries)


def test_mmap_checksums_still_verified(fleet_dataset, tmp_path):
    config = EngineConfig(backend="cinct", block_size=31, sa_sample_rate=8)
    save_index(build_engine(fleet_dataset, config), tmp_path / "idx")
    archive = tmp_path / "idx" / "bwt.npz"
    blob = bytearray(archive.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    archive.write_bytes(bytes(blob))
    with pytest.raises(IndexCorruptionError, match="bwt.npz"):
        load_index(tmp_path / "idx", mmap=True)


# --------------------------------------------------------------------------- #
# archive-level mechanics
# --------------------------------------------------------------------------- #
def test_load_npz_arrays_maps_uncompressed_members(tmp_path):
    path = tmp_path / "arrays.npz"
    empty = np.empty(0, dtype=np.int64)
    big = np.arange(10_000, dtype=np.int64)
    fortran = np.asfortranarray(np.arange(12, dtype=np.float64).reshape(3, 4))
    np.savez(path, big=big, empty=empty, fortran=fortran)

    arrays = load_npz_arrays(path, mmap_mode="r")
    assert isinstance(arrays["big"], np.memmap)
    np.testing.assert_array_equal(arrays["big"], big)
    np.testing.assert_array_equal(arrays["empty"], empty)
    np.testing.assert_array_equal(arrays["fortran"], fortran)
    assert arrays["fortran"].flags["F_CONTIGUOUS"]

    in_memory = load_npz_arrays(path)
    np.testing.assert_array_equal(in_memory["big"], big)
    assert not isinstance(in_memory["big"], np.memmap)


def test_load_npz_arrays_falls_back_on_compressed_members(tmp_path):
    """Legacy compressed archives stay loadable — just not zero-copy."""
    path = tmp_path / "compressed.npz"
    data = np.arange(5_000, dtype=np.int64)
    np.savez_compressed(path, data=data)
    arrays = load_npz_arrays(path, mmap_mode="r")
    np.testing.assert_array_equal(arrays["data"], data)
    assert not isinstance(arrays["data"], np.memmap)


def test_timestamp_store_mmap_and_compressed_round_trip(tmp_path):
    store = TimestampStore([[1.0, 2.0, 3.0], None, [5.5, 6.25]])
    uncompressed = tmp_path / "plain.npz"
    store.save(uncompressed, compress=False)
    assert TimestampStore.load(uncompressed, mmap_mode="r").as_lists() == store.as_lists()
    compressed = tmp_path / "compressed.npz"
    store.save(compressed)  # the default stays compressed (smallest archive)
    assert TimestampStore.load(compressed, mmap_mode="r").as_lists() == store.as_lists()
    assert TimestampStore.load(compressed).as_lists() == store.as_lists()
