"""Strict-path/locate matrix: every locate-capable backend, sampled and not.

The headline regression this suite pins down: CiNCT-family backends built
*without* ``sa_sample_rate`` used to raise ``QueryError: locate requires the
index to be built with sa_sample_rate`` from ``locate``/``strict_path``
instead of answering via the retained suffix array.  Every combination of

* backend (all locate-capable registry entries),
* SA sampling (``sa_sample_rate=8`` vs unsampled),
* growth stage (built in one shot vs grown via ``add_batch``), and
* persistence (live engine vs a save/load round-trip)

must return the same matches as a brute-force scan of the raw trajectories.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import EngineConfig, TrajectoryEngine, available_backends, backend_spec
from repro.network import grid_network
from repro.trajectories import TrajectoryDataset, straight_biased_walks

LOCATE_BACKENDS = [
    name for name in available_backends() if backend_spec(name).supports_locate
]
SAMPLING = [8, None]


@pytest.fixture(scope="module")
def fleet_dataset():
    network = grid_network(4, 4)
    rng = np.random.default_rng(42)
    trajectories = straight_biased_walks(
        network, n_trajectories=14, min_length=4, max_length=10, rng=rng
    )
    for k, trajectory in enumerate(trajectories):
        departure = float(rng.uniform(0, 200))
        if k % 2:
            # integral dwells exercise the delta-encoded store entries...
            dwell = rng.integers(2, 12, size=len(trajectory.edges)).astype(float)
        else:
            # ...fractional dwells exercise the raw-float fallback
            dwell = rng.uniform(2, 12, size=len(trajectory.edges))
        trajectory.timestamps = list(departure + np.cumsum(dwell) - dwell[0])
    return TrajectoryDataset(name="matrix-fleet", trajectories=trajectories, network=network)


@pytest.fixture(scope="module")
def probe_paths(fleet_dataset):
    paths = []
    for trajectory in fleet_dataset.trajectories[:6]:
        edges = list(trajectory.edges)
        paths.append(edges[:2])
        paths.append(edges[1:4] if len(edges) >= 4 else edges[-2:])
    paths.append(["nowhere", "else"])
    return paths


def brute_force_matches(dataset, path, t_start=None, t_end=None):
    """Oracle: scan every trajectory for occurrences of ``path``."""
    expected = []
    m = len(path)
    for tid, trajectory in enumerate(dataset.trajectories):
        edges = list(trajectory.edges)
        for start in range(len(edges) - m + 1):
            if edges[start : start + m] != list(path):
                continue
            times = trajectory.timestamps
            start_time = times[start] if times is not None else None
            end_time = times[start + m - 1] if times is not None else None
            if t_start is not None:
                if start_time is None or start_time < t_start or end_time > t_end:
                    continue
            expected.append((tid, start, start + m - 1, start_time, end_time))
    return expected


def as_tuples(matches):
    return [
        (m.trajectory_id, m.start_edge_index, m.end_edge_index, m.start_time, m.end_time)
        for m in matches
    ]


def build_engine(fleet_dataset, backend, sa_sample_rate, grown):
    config = EngineConfig(backend=backend, block_size=31, sa_sample_rate=sa_sample_rate)
    if grown:
        engine = TrajectoryEngine.build(fleet_dataset.trajectories[:7], config)
        engine.add_batch(fleet_dataset.trajectories[7:])
        return engine
    return TrajectoryEngine.build(fleet_dataset, config)


def engine_variants(fleet_dataset, backend, sa_sample_rate, tmp_path):
    """Pre/post-growth × pre/post-reload engines for one configuration."""
    stages = [False, True] if backend_spec(backend).supports_growth else [False]
    for grown in stages:
        engine = build_engine(fleet_dataset, backend, sa_sample_rate, grown)
        yield f"grown={grown} reloaded=False", engine
        directory = tmp_path / f"{backend}-{sa_sample_rate}-{grown}"
        engine.save(directory)
        yield f"grown={grown} reloaded=True", TrajectoryEngine.load(directory)


@pytest.mark.parametrize("sa_sample_rate", SAMPLING, ids=["sampled", "unsampled"])
@pytest.mark.parametrize("backend", LOCATE_BACKENDS)
class TestLocateMatrix:
    def test_locate_matches_brute_force(
        self, fleet_dataset, probe_paths, tmp_path, backend, sa_sample_rate
    ):
        for label, engine in engine_variants(
            fleet_dataset, backend, sa_sample_rate, tmp_path
        ):
            for path in probe_paths:
                if path == ["nowhere", "else"]:
                    continue  # unknown segments raise AlphabetError by contract
                got = as_tuples(engine.locate(path))
                assert got == brute_force_matches(fleet_dataset, path), (label, path)

    def test_strict_path_window_matches_brute_force(
        self, fleet_dataset, probe_paths, tmp_path, backend, sa_sample_rate
    ):
        # One engine per (backend, sampling); windows derived from real matches.
        for label, engine in engine_variants(
            fleet_dataset, backend, sa_sample_rate, tmp_path
        ):
            for path in probe_paths[:6]:
                full = brute_force_matches(fleet_dataset, path)
                assert as_tuples(engine.strict_path(path)) == full, (label, path)
                if not full:
                    continue
                t_start, t_end = full[0][3], full[0][4]
                got = as_tuples(engine.strict_path(path, t_start, t_end))
                assert got == brute_force_matches(fleet_dataset, path, t_start, t_end), (
                    label,
                    path,
                )

    def test_unsampled_issue_repro(self, fleet_dataset, probe_paths, tmp_path, backend, sa_sample_rate):
        # The literal ISSUE repro: a windowed strict-path query must return
        # matches (not QueryError) even without sa_sample_rate.
        engine = build_engine(fleet_dataset, backend, sa_sample_rate, grown=False)
        path = list(fleet_dataset.trajectories[0].edges[:2])
        matches = engine.strict_path(path, t_start=0.0, t_end=1e9)
        assert matches == engine.strict_path(path)


def test_partitioned_unsampled_strict_path_smoke():
    """The exact reproduction from the issue report."""
    engine = TrajectoryEngine.build(
        [[1, 2, 3, 4], [2, 3, 4, 5], [1, 2, 3]],
        EngineConfig(backend="partitioned-cinct"),
    )
    matches = engine.locate([2, 3])
    assert [(m.trajectory_id, m.start_edge_index) for m in matches] == [
        (0, 1),
        (1, 0),
        (2, 1),
    ]


class TestPartialTimestampSemantics:
    """Windowed strict-path on a partially timestamped fleet filters per match."""

    @pytest.fixture(scope="class")
    def partial_engine(self):
        from repro.trajectories import Trajectory

        trajectories = [
            Trajectory(edges=["a", "b", "c"], timestamps=[0.0, 5.0, 10.0]),
            Trajectory(edges=["a", "b", "c"]),  # no timestamps: dropped in windows
            Trajectory(edges=["a", "b", "d"], timestamps=[100.0, 105.0, 110.0]),
        ]
        return TrajectoryEngine.build(
            trajectories, EngineConfig(backend="cinct", block_size=15, sa_sample_rate=4)
        )

    def test_unwindowed_returns_untimed_matches(self, partial_engine):
        matches = partial_engine.strict_path(["a", "b"])
        assert {m.trajectory_id for m in matches} == {0, 1, 2}
        assert partial_engine.strict_path(["a", "b"]) == partial_engine.locate(["a", "b"])

    def test_window_drops_untimed_matches_only(self, partial_engine):
        matches = partial_engine.strict_path(["a", "b"], 0.0, 200.0)
        assert {m.trajectory_id for m in matches} == {0, 2}
        narrow = partial_engine.strict_path(["a", "b"], 0.0, 20.0)
        assert {m.trajectory_id for m in narrow} == {0}

    def test_fully_untimed_fleet_still_rejected(self):
        from repro.exceptions import QueryError

        engine = TrajectoryEngine.build(
            [["a", "b"], ["b", "c"]],
            EngineConfig(backend="cinct", block_size=15, sa_sample_rate=4),
        )
        with pytest.raises(QueryError, match="no timestamps"):
            engine.strict_path(["a", "b"], 0.0, 1.0)
