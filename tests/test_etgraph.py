"""Tests for the empirical transition graph (ET-graph)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ETGraph
from repro.exceptions import ConstructionError, QueryError
from repro.strings import build_trajectory_string


@pytest.fixture(scope="module")
def paper_graph(paper_trajectory_string):
    return ETGraph(paper_trajectory_string.text, sigma=paper_trajectory_string.sigma)


class TestConstruction:
    def test_rejects_tiny_text(self):
        with pytest.raises(ConstructionError):
            ETGraph([0])

    def test_rejects_small_sigma(self):
        with pytest.raises(ConstructionError):
            ETGraph([2, 3, 0], sigma=2)

    def test_sigma_inferred(self):
        graph = ETGraph([2, 5, 2, 0])
        assert graph.sigma == 6


class TestPaperExample(object):
    """Checks against the worked example of Fig. 6a."""

    def test_travel_direction_edges(self, paper_trajectory_string, paper_graph):
        alphabet = paper_trajectory_string.alphabet
        a, b, c, d = (alphabet.encode(x) for x in "ABCD")
        # A is followed by B (twice) and by D (once) in the trajectories.
        assert paper_graph.has_edge(a, b)
        assert paper_graph.has_edge(a, d)
        assert paper_graph.bigram_count(a, b) == 2
        assert paper_graph.bigram_count(a, d) == 1
        # B is followed by C and by E, never by A.
        assert paper_graph.has_edge(b, c)
        assert not paper_graph.has_edge(b, a)

    def test_separator_context(self, paper_trajectory_string, paper_graph):
        """$ acts as the context of the first edge of every trajectory."""
        alphabet = paper_trajectory_string.alphabet
        sep = 1
        a, b = alphabet.encode("A"), alphabet.encode("B")
        assert paper_graph.has_edge(sep, a)
        assert paper_graph.has_edge(sep, b)
        # Three trajectories start with A, one with B.
        assert paper_graph.bigram_count(sep, a) == 3
        assert paper_graph.bigram_count(sep, b) == 1

    def test_wraparound_edge_exists(self, paper_trajectory_string, paper_graph):
        """The cyclic pair (T[n-1], T[0]) contributes an edge (Fig. 6b, label of #)."""
        first_symbol = int(paper_trajectory_string.text[0])
        assert paper_graph.has_edge(first_symbol, 0)

    def test_neighbours_by_frequency_ordering(self, paper_trajectory_string, paper_graph):
        alphabet = paper_trajectory_string.alphabet
        a = alphabet.encode("A")
        ordered = paper_graph.neighbours_by_frequency(a)
        assert ordered[0][0] == alphabet.encode("B")  # most frequent successor first
        assert ordered[0][1] >= ordered[-1][1]


class TestStatistics:
    def test_bigram_counts_sum_to_text_length(self, paper_trajectory_string, paper_graph):
        total = sum(edge.bigram_count for edge in paper_graph.edges())
        assert total == paper_trajectory_string.length  # cyclic pairs: one per position

    def test_out_degree(self, paper_trajectory_string, paper_graph):
        alphabet = paper_trajectory_string.alphabet
        a = alphabet.encode("A")
        assert paper_graph.out_degree(a) == 2
        assert paper_graph.out_neighbours(a) == sorted(
            [alphabet.encode("B"), alphabet.encode("D")]
        )

    def test_max_out_degree_at_least_average(self, medium_trajectory_string):
        graph = ETGraph(medium_trajectory_string.text, sigma=medium_trajectory_string.sigma)
        assert graph.max_out_degree() >= graph.average_out_degree()

    def test_average_out_degree_excludes_specials_by_default(self, paper_graph):
        with_specials = paper_graph.average_out_degree(edge_symbols_only=False)
        only_edges = paper_graph.average_out_degree(edge_symbols_only=True)
        # $ has many successors (trajectory starts), so including it raises the mean.
        assert with_specials >= only_edges

    def test_bigram_count_unknown_edge(self, paper_graph):
        with pytest.raises(QueryError):
            paper_graph.bigram_count(2, 2)

    def test_contexts_listed(self, paper_graph):
        contexts = paper_graph.contexts()
        assert 0 in contexts  # '#' has the wrap-around successor
        assert 1 in contexts  # '$'

    def test_size_in_bits_positive_and_monotone(self, medium_trajectory_string):
        graph = ETGraph(medium_trajectory_string.text, sigma=medium_trajectory_string.sigma)
        assert graph.size_in_bits() > 0
        assert graph.size_in_bits(text_length=10**9) > graph.size_in_bits(text_length=1000)


class TestSparsityReflectsData:
    def test_straight_line_dataset_has_degree_one(self):
        ts = build_trajectory_string([["a", "b", "c", "d", "e"]])
        graph = ETGraph(ts.text, sigma=ts.sigma)
        assert graph.average_out_degree() == pytest.approx(1.0)

    def test_noisy_dataset_is_denser(self):
        rng = np.random.default_rng(0)
        edges = [f"e{i}" for i in range(30)]
        ordered = [[edges[(i + k) % 30] for k in range(10)] for i in range(20)]
        shuffled = [[edges[int(rng.integers(0, 30))] for _ in range(10)] for _ in range(20)]
        sparse_graph = ETGraph(build_trajectory_string(ordered).text)
        dense_graph = ETGraph(build_trajectory_string(shuffled).text)
        assert dense_graph.average_out_degree() > sparse_graph.average_out_degree()
