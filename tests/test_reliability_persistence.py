"""Crash-safe persistence: atomic promotes, checksums, canonical corruption.

The contract under test: ``save_index`` never leaves a directory in a state
``load_index`` would misread — a crash at any artefact-write boundary leaves
the previously promoted index bit-identically loadable (and no staging
litter), a re-save replaces the directory wholesale (no stale shard
artefacts), and any post-save corruption (truncation, bit rot, deletion)
fails the format-v5 manifest check with one
:class:`~repro.exceptions.IndexCorruptionError` naming the torn artefact.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.engine import EngineConfig, TrajectoryEngine, build_engine
from repro.exceptions import IndexCorruptionError
from repro.io import load_index, save_index
from repro.network import grid_network
from repro.reliability import faults
from repro.trajectories import TrajectoryDataset, straight_biased_walks

SHARD_COUNTS = (1, 3)


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear_faults()
    yield
    faults.clear_faults()


@pytest.fixture(scope="module")
def fleet_dataset():
    network = grid_network(5, 5)
    rng = np.random.default_rng(83)
    trajectories = straight_biased_walks(
        network, n_trajectories=15, min_length=5, max_length=11, rng=rng
    )
    for trajectory in trajectories:
        departure = float(rng.uniform(0, 300))
        dwell = rng.uniform(4, 16, size=len(trajectory.edges))
        trajectory.timestamps = list(departure + np.cumsum(dwell) - dwell[0])
    return TrajectoryDataset(
        name="persist-reliability", trajectories=trajectories, network=network
    )


@pytest.fixture(scope="module")
def probe_path(fleet_dataset):
    return list(fleet_dataset.trajectories[0].edges[:2])


def _build(fleet_dataset, num_shards):
    return build_engine(
        fleet_dataset, EngineConfig(backend="cinct", num_shards=num_shards)
    )


def _tree(directory):
    """Relative path -> bytes for every file under ``directory``."""
    return {
        path.relative_to(directory).as_posix(): path.read_bytes()
        for path in sorted(directory.rglob("*"))
        if path.is_file()
    }


# --------------------------------------------------------------------------- #
# format v5: manifest round trips
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_v5_document_carries_manifest(fleet_dataset, tmp_path, num_shards):
    engine = _build(fleet_dataset, num_shards)
    save_index(engine, tmp_path / "index")
    document = json.loads(
        (tmp_path / "index" / "engine.json").read_text(encoding="utf-8")
    )
    assert document["format_version"] == 5
    manifest = document["manifest"]
    assert manifest, "the manifest must cover at least one artefact"
    for entry in manifest.values():
        assert set(entry) == {"sha256", "bytes"}
        assert len(entry["sha256"]) == 64
        assert entry["bytes"] > 0
    if num_shards > 1:
        # Chain of trust: the fleet manifest checksums the shard documents;
        # each shard document's manifest covers that shard's artefacts.
        assert all(name.endswith("engine.json") for name in manifest)
        shard_doc = json.loads(
            (tmp_path / "index" / "shard_00" / "engine.json").read_text(
                encoding="utf-8"
            )
        )
        assert "timestamps.npz" in shard_doc["manifest"]
    else:
        assert "timestamps.npz" in manifest


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_round_trip_after_checksummed_save(
    fleet_dataset, tmp_path, probe_path, num_shards
):
    engine = _build(fleet_dataset, num_shards)
    save_index(engine, tmp_path / "index")
    reloaded = load_index(tmp_path / "index")
    assert reloaded.count(probe_path) == engine.count(probe_path)


# --------------------------------------------------------------------------- #
# crash-mid-save atomicity
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "stage", ["backend", "timestamps", "document"]
)
def test_crash_mid_save_preserves_previous_index(
    fleet_dataset, tmp_path, probe_path, stage
):
    engine = _build(fleet_dataset, 1)
    target = tmp_path / "index"
    save_index(engine, target)
    before = _tree(target)
    with faults.save_crash(stage):
        with pytest.raises(faults.SimulatedCrash):
            save_index(engine, target)
    assert _tree(target) == before  # bit-identical: the promote never ran
    assert not list(tmp_path.glob("*.tmp-*")), "no staging litter"
    assert load_index(target).count(probe_path) == engine.count(probe_path)


def test_crash_mid_sharded_save_preserves_previous_index(
    fleet_dataset, tmp_path, probe_path
):
    single = _build(fleet_dataset, 1)
    fleet = _build(fleet_dataset, 3)
    target = tmp_path / "index"
    save_index(single, target)
    before = _tree(target)
    with faults.save_crash("shard_01/backend"):
        with pytest.raises(faults.SimulatedCrash):
            save_index(fleet, target)
    assert _tree(target) == before
    assert not list(tmp_path.glob("*.tmp-*"))
    assert load_index(target).count(probe_path) == single.count(probe_path)


def test_crash_on_first_save_leaves_nothing(fleet_dataset, tmp_path):
    engine = _build(fleet_dataset, 1)
    with faults.save_crash("backend"):
        with pytest.raises(faults.SimulatedCrash):
            save_index(engine, tmp_path / "fresh")
    assert not (tmp_path / "fresh").exists()
    assert not list(tmp_path.glob("*.tmp-*"))


def test_env_driven_save_crash(fleet_dataset, tmp_path, monkeypatch):
    engine = _build(fleet_dataset, 1)
    monkeypatch.setenv("REPRO_SAVE_CRASH", "timestamps")
    faults.reload_env()
    with pytest.raises(faults.SimulatedCrash):
        save_index(engine, tmp_path / "index")
    assert not (tmp_path / "index").exists()


# --------------------------------------------------------------------------- #
# re-save hygiene
# --------------------------------------------------------------------------- #
def test_resave_replaces_directory_wholesale(fleet_dataset, tmp_path, probe_path):
    fleet = _build(fleet_dataset, 3)
    single = _build(fleet_dataset, 1)
    target = tmp_path / "index"
    save_index(fleet, target)
    assert (target / "shard_00").is_dir()
    save_index(single, target)  # fewer artefacts than the previous layout
    leftovers = [p.name for p in target.iterdir() if p.name.startswith("shard_")]
    assert leftovers == [], "stale shard artefacts must not survive a re-save"
    assert load_index(target).count(probe_path) == single.count(probe_path)


def test_resave_shrinking_shard_count(fleet_dataset, tmp_path, probe_path):
    wide = _build(fleet_dataset, 3)
    narrow = build_engine(
        fleet_dataset, EngineConfig(backend="cinct", num_shards=2)
    )
    target = tmp_path / "index"
    save_index(wide, target)
    save_index(narrow, target)
    shard_dirs = sorted(
        p.name for p in target.iterdir() if p.name.startswith("shard_")
    )
    assert shard_dirs == ["shard_00", "shard_01"]
    assert load_index(target).count(probe_path) == narrow.count(probe_path)


# --------------------------------------------------------------------------- #
# corruption detection (manifest verification)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("mode", ["truncate", "flip", "delete"])
def test_corrupt_timestamps_detected(fleet_dataset, tmp_path, mode):
    engine = _build(fleet_dataset, 1)
    save_index(engine, tmp_path / "index")
    faults.corrupt_artifact(tmp_path / "index" / "timestamps.npz", mode=mode)
    with pytest.raises(IndexCorruptionError, match="timestamps.npz"):
        load_index(tmp_path / "index")


def test_corrupt_backend_archive_detected(fleet_dataset, tmp_path):
    engine = _build(fleet_dataset, 1)
    save_index(engine, tmp_path / "index")
    archives = [
        p
        for p in (tmp_path / "index").glob("*.npz")
        if p.name != "timestamps.npz"
    ]
    assert archives, "the cinct backend persists at least one archive"
    faults.corrupt_artifact(archives[0], mode="truncate")
    with pytest.raises(IndexCorruptionError, match=archives[0].name):
        load_index(tmp_path / "index")


def test_corrupt_shard_artefact_detected(fleet_dataset, tmp_path):
    engine = _build(fleet_dataset, 3)
    save_index(engine, tmp_path / "index")
    faults.corrupt_artifact(
        tmp_path / "index" / "shard_01" / "timestamps.npz", mode="flip"
    )
    with pytest.raises(IndexCorruptionError, match="timestamps.npz"):
        load_index(tmp_path / "index")


def test_missing_shard_directory_detected(fleet_dataset, tmp_path):
    import shutil

    engine = _build(fleet_dataset, 3)
    save_index(engine, tmp_path / "index")
    shutil.rmtree(tmp_path / "index" / "shard_01")
    with pytest.raises(IndexCorruptionError, match="shard_01"):
        load_index(tmp_path / "index")


def test_truncated_engine_document_detected(fleet_dataset, tmp_path):
    engine = _build(fleet_dataset, 1)
    save_index(engine, tmp_path / "index")
    faults.corrupt_artifact(tmp_path / "index" / "engine.json", mode="truncate")
    with pytest.raises(IndexCorruptionError, match="engine.json"):
        load_index(tmp_path / "index")


def test_corruption_error_is_canonical(fleet_dataset, tmp_path):
    from repro import IndexCorruptionError as exported
    from repro.exceptions import DatasetError, ReproError

    assert exported is IndexCorruptionError
    assert issubclass(IndexCorruptionError, DatasetError)
    assert issubclass(IndexCorruptionError, ReproError)
    engine = _build(fleet_dataset, 1)
    save_index(engine, tmp_path / "index")
    faults.corrupt_artifact(tmp_path / "index" / "timestamps.npz")
    with pytest.raises(ReproError):  # the CLI maps ReproError to exit 2
        load_index(tmp_path / "index")


# --------------------------------------------------------------------------- #
# backward compatibility: v4 documents load and upgrade on re-save
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_v4_document_loads_and_upgrades(
    fleet_dataset, tmp_path, probe_path, num_shards
):
    engine = _build(fleet_dataset, num_shards)
    target = tmp_path / "index"
    save_index(engine, target)
    # Rewrite the document(s) as the v4 generation wrote them: no manifest.
    for document_path in sorted(target.rglob("engine.json")):
        document = json.loads(document_path.read_text(encoding="utf-8"))
        document.pop("manifest", None)
        document["format_version"] = 4
        document_path.write_text(json.dumps(document), encoding="utf-8")
    reloaded = load_index(target)
    assert reloaded.count(probe_path) == engine.count(probe_path)
    save_index(reloaded, target)  # re-save upgrades in place
    upgraded = json.loads((target / "engine.json").read_text(encoding="utf-8"))
    assert upgraded["format_version"] == 5
    assert "manifest" in upgraded
    assert load_index(target).count(probe_path) == engine.count(probe_path)


def test_v4_document_loads_unchecksummed(fleet_dataset, tmp_path, probe_path):
    # A pre-manifest document must not fail on artefacts it never hashed —
    # only genuine parse failures surface (still canonically).
    engine = _build(fleet_dataset, 1)
    target = tmp_path / "index"
    save_index(engine, target)
    document_path = target / "engine.json"
    document = json.loads(document_path.read_text(encoding="utf-8"))
    document.pop("manifest")
    document["format_version"] = 4
    document_path.write_text(json.dumps(document), encoding="utf-8")
    assert load_index(target).count(probe_path) == engine.count(probe_path)
    faults.corrupt_artifact(target / "timestamps.npz", mode="truncate")
    with pytest.raises(IndexCorruptionError, match="timestamps.npz"):
        load_index(target)


def test_engine_save_goes_through_crash_safe_path(fleet_dataset, tmp_path):
    # The method surface (engine.save / TrajectoryEngine.load) rides the
    # same staged v5 writer as the free functions.
    engine = TrajectoryEngine.build(fleet_dataset, EngineConfig(backend="cinct"))
    engine.save(tmp_path / "index")
    document = json.loads(
        (tmp_path / "index" / "engine.json").read_text(encoding="utf-8")
    )
    assert document["format_version"] == 5
    assert "manifest" in document
