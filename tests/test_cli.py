"""Tests for the ``repro-cinct`` command-line interface (engine-facade based)."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.cli import build_parser, main
from repro.io import save_dataset_jsonl
from repro.trajectories import Trajectory, TrajectoryDataset


@pytest.fixture()
def jsonl_dataset(tmp_path):
    dataset = TrajectoryDataset(
        name="cli-fixture",
        trajectories=[
            Trajectory(edges=["a", "b", "c", "d"]),
            Trajectory(edges=["b", "c", "d", "e"]),
            Trajectory(edges=["a", "b", "c"]),
        ],
    )
    return save_dataset_jsonl(dataset, tmp_path / "trips.jsonl")


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_stats_arguments(self):
        args = build_parser().parse_args(["stats", "--dataset", "roma", "--scale", "0.1"])
        assert args.dataset == "roma"
        assert args.scale == 0.1

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--dataset", "atlantis"])


class TestStatsCommand:
    def test_prints_table(self, capsys):
        assert main(["stats", "--dataset", "chess", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "H0(" in out or "H0" in out
        assert "Chess" in out


class TestBuildAndQuery:
    def test_build_from_jsonl_then_query(self, jsonl_dataset, tmp_path, capsys):
        output = tmp_path / "index"
        assert main(["build", "--input", str(jsonl_dataset), "--output", str(output)]) == 0
        build_output = capsys.readouterr().out
        assert "index size" in build_output
        assert (output / "bwt.npz").exists()
        assert (output / "engine.json").exists()

        assert main(["query", "--index", str(output), "b", "c", "d"]) == 0
        query_output = capsys.readouterr().out
        assert "matches   : 2" in query_output

    def test_sharded_build_with_timestamps_then_query(self, tmp_path, capsys):
        # The build summary reads engine.timestamp_store when timestamps are
        # present; it must work on a sharded fleet too.
        dataset = TrajectoryDataset(
            name="cli-sharded",
            trajectories=[
                Trajectory(edges=["a", "b", "c"], timestamps=[0.0, 5.0, 10.0]),
                Trajectory(edges=["b", "c", "d"], timestamps=[20.0, 25.0, 30.0]),
                Trajectory(edges=["a", "b", "d"], timestamps=[40.0, 45.0, 50.0]),
            ],
        )
        source = save_dataset_jsonl(dataset, tmp_path / "timed.jsonl")
        output = tmp_path / "fleet"
        assert main([
            "build", "--input", str(source), "--backend", "partitioned-cinct",
            "--sa-sample-rate", "4", "--num-shards", "2", "--output", str(output),
        ]) == 0
        build_output = capsys.readouterr().out
        assert "shards            : 2" in build_output
        assert "temporal store" in build_output
        assert "3/3 trajectories timestamped" in build_output
        assert main([
            "query", "--index", str(output), "--t-start", "0", "--t-end", "60",
            "--verbose", "b", "c",
        ]) == 0
        query_output = capsys.readouterr().out
        assert "shards    : 2" in query_output
        assert "matches   : 2" in query_output

    @pytest.mark.parametrize("backend", ["icb-huff", "linear-scan", "partitioned-cinct"])
    def test_build_and_query_other_backends(self, jsonl_dataset, tmp_path, capsys, backend):
        output = tmp_path / f"index-{backend}"
        assert main(
            [
                "build",
                "--input",
                str(jsonl_dataset),
                "--backend",
                backend,
                "--output",
                str(output),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["query", "--index", str(output), "b", "c", "d"]) == 0
        assert "matches   : 2" in capsys.readouterr().out

    def test_strict_path_query_through_cli(self, tmp_path, capsys):
        dataset = TrajectoryDataset(
            name="timed",
            trajectories=[
                Trajectory(edges=["a", "b", "c"], timestamps=[0.0, 5.0, 10.0]),
                Trajectory(edges=["a", "b", "c"], timestamps=[100.0, 110.0, 120.0]),
            ],
        )
        source = save_dataset_jsonl(dataset, tmp_path / "timed.jsonl")
        output = tmp_path / "timed-index"
        assert main(
            [
                "build",
                "--input",
                str(source),
                "--sa-sample-rate",
                "4",
                "--output",
                str(output),
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            ["query", "--index", str(output), "--t-start", "0", "--t-end", "20", "a", "b"]
        ) == 0
        out = capsys.readouterr().out
        assert "matches   : 1" in out

    def test_query_verbose_reports_cache_and_epoch(self, jsonl_dataset, tmp_path, capsys):
        output = tmp_path / "index"
        main(["build", "--input", str(jsonl_dataset), "--output", str(output)])
        capsys.readouterr()
        assert main(["query", "--index", str(output), "--verbose", "b", "c", "d"]) == 0
        out = capsys.readouterr().out
        assert "cache     : on" in out
        assert "misses=1" in out
        assert "epoch     : 0" in out

    def test_query_no_cache_flag(self, jsonl_dataset, tmp_path, capsys):
        output = tmp_path / "index"
        main(["build", "--input", str(jsonl_dataset), "--output", str(output)])
        capsys.readouterr()
        rc = main(["query", "--index", str(output), "--no-cache", "--verbose", "b", "c", "d"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "matches   : 2" in out
        assert "cache     : off" in out

    def test_unknown_backend_rejected(self, jsonl_dataset, tmp_path, capsys):
        rc = main(
            [
                "build",
                "--input",
                str(jsonl_dataset),
                "--backend",
                "btree",
                "--output",
                str(tmp_path / "x"),
            ]
        )
        assert rc == 2
        assert "unknown index backend" in capsys.readouterr().err

    def test_query_unknown_segment_reports_zero(self, jsonl_dataset, tmp_path, capsys):
        output = tmp_path / "index"
        main(["build", "--input", str(jsonl_dataset), "--output", str(output)])
        capsys.readouterr()
        assert main(["query", "--index", str(output), "zz", "qq"]) == 0
        out = capsys.readouterr().out
        assert "not found" in out or "matches   : 0" in out

    def test_build_from_named_dataset(self, tmp_path, capsys):
        output = tmp_path / "roma-index"
        assert main(["build", "--dataset", "roma", "--scale", "0.05", "--output", str(output)]) == 0
        assert (output / "engine.json").exists()

    def test_query_legacy_save_cinct_directory(self, tmp_path, capsys):
        # Directories written by the legacy CiNCT-only format stay queryable.
        from repro.core import CiNCT
        from repro.io import save_cinct
        from repro.strings import build_trajectory_string, burrows_wheeler_transform

        trajectory_string = build_trajectory_string(
            [["a", "b", "c", "d"], ["b", "c", "d", "e"]]
        )
        bwt_result = burrows_wheeler_transform(
            trajectory_string.text, sigma=trajectory_string.sigma
        )
        index = CiNCT(bwt_result, block_size=15)
        save_cinct(index, bwt_result, tmp_path / "legacy", trajectory_string=trajectory_string)
        assert main(["query", "--index", str(tmp_path / "legacy"), "b", "c", "d"]) == 0
        assert "matches   : 2" in capsys.readouterr().out

    def test_build_requires_source(self, tmp_path, capsys):
        assert main(["build", "--output", str(tmp_path / "x")]) == 2
        assert "error" in capsys.readouterr().err

    def test_build_rejects_unknown_extension(self, tmp_path, capsys):
        bogus = tmp_path / "data.parquet"
        bogus.write_text("not really", encoding="utf-8")
        assert main(["build", "--input", str(bogus), "--output", str(tmp_path / "x")]) == 2


class TestCompareCommand:
    def test_compare_two_variants(self, capsys):
        rc = main(
            [
                "compare",
                "--dataset",
                "chess",
                "--scale",
                "0.05",
                "--variants",
                "CiNCT",
                "UFMI",
                "--n-patterns",
                "5",
                "--pattern-length",
                "5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "CiNCT" in out
        assert "UFMI" in out
        assert "bits/symbol" in out

    def test_compare_reports_sizes_from_registry(self, capsys):
        rc = main(
            [
                "compare",
                "--dataset",
                "chess",
                "--scale",
                "0.05",
                "--backends",
                "cinct",
                "linear-scan",
                "--n-patterns",
                "5",
                "--pattern-length",
                "5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "size (bits)" in out
        assert "bits/symbol" in out
        assert "LinearScan" in out
        # The raw 32-bit scan is a fixed 32 bits/symbol; CiNCT must be smaller.
        assert "32.0" in out

    def test_compare_rejects_unknown_backend(self, capsys):
        rc = main(
            ["compare", "--dataset", "chess", "--scale", "0.05", "--backends", "btree"]
        )
        assert rc == 2
        assert "unknown index backend" in capsys.readouterr().err

    def test_compare_iterates_in_deterministic_order(self, capsys):
        # Rows follow available_backends() order (and dedupe), no matter how
        # the variants were spelled on the command line.
        rc = main(
            [
                "compare",
                "--dataset",
                "chess",
                "--scale",
                "0.05",
                "--backends",
                "UFMI",
                "cinct",
                "ufmi",
                "--n-patterns",
                "5",
                "--pattern-length",
                "5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("UFMI") == 1
        assert out.index("CiNCT") < out.index("UFMI")


class TestModuleEntryPoint:
    def test_python_dash_m_repro_runs_the_cli(self):
        import os
        from pathlib import Path

        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else os.pathsep.join([package_root, existing])
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            check=False,
            env=env,
        )
        assert result.returncode == 0
        assert "repro-cinct" in result.stdout
