"""Tests for the ``repro-cinct`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.io import save_dataset_jsonl
from repro.trajectories import Trajectory, TrajectoryDataset


@pytest.fixture()
def jsonl_dataset(tmp_path):
    dataset = TrajectoryDataset(
        name="cli-fixture",
        trajectories=[
            Trajectory(edges=["a", "b", "c", "d"]),
            Trajectory(edges=["b", "c", "d", "e"]),
            Trajectory(edges=["a", "b", "c"]),
        ],
    )
    return save_dataset_jsonl(dataset, tmp_path / "trips.jsonl")


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_stats_arguments(self):
        args = build_parser().parse_args(["stats", "--dataset", "roma", "--scale", "0.1"])
        assert args.dataset == "roma"
        assert args.scale == 0.1

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--dataset", "atlantis"])


class TestStatsCommand:
    def test_prints_table(self, capsys):
        assert main(["stats", "--dataset", "chess", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "H0(" in out or "H0" in out
        assert "Chess" in out


class TestBuildAndQuery:
    def test_build_from_jsonl_then_query(self, jsonl_dataset, tmp_path, capsys):
        output = tmp_path / "index"
        assert main(["build", "--input", str(jsonl_dataset), "--output", str(output)]) == 0
        build_output = capsys.readouterr().out
        assert "index size" in build_output
        assert (output / "bwt.npz").exists()
        assert (output / "index.json").exists()

        assert main(["query", "--index", str(output), "b", "c", "d"]) == 0
        query_output = capsys.readouterr().out
        assert "matches   : 2" in query_output

    def test_query_unknown_segment_reports_zero(self, jsonl_dataset, tmp_path, capsys):
        output = tmp_path / "index"
        main(["build", "--input", str(jsonl_dataset), "--output", str(output)])
        capsys.readouterr()
        assert main(["query", "--index", str(output), "zz", "qq"]) == 0
        out = capsys.readouterr().out
        assert "not found" in out or "matches   : 0" in out

    def test_build_from_named_dataset(self, tmp_path, capsys):
        output = tmp_path / "roma-index"
        assert main(["build", "--dataset", "roma", "--scale", "0.05", "--output", str(output)]) == 0
        assert (output / "index.json").exists()

    def test_build_requires_source(self, tmp_path, capsys):
        assert main(["build", "--output", str(tmp_path / "x")]) == 2
        assert "error" in capsys.readouterr().err

    def test_build_rejects_unknown_extension(self, tmp_path, capsys):
        bogus = tmp_path / "data.parquet"
        bogus.write_text("not really", encoding="utf-8")
        assert main(["build", "--input", str(bogus), "--output", str(tmp_path / "x")]) == 2


class TestCompareCommand:
    def test_compare_two_variants(self, capsys):
        rc = main(
            [
                "compare",
                "--dataset",
                "chess",
                "--scale",
                "0.05",
                "--variants",
                "CiNCT",
                "UFMI",
                "--n-patterns",
                "5",
                "--pattern-length",
                "5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "CiNCT" in out
        assert "UFMI" in out
        assert "bits/symbol" in out
