"""Tests for dataset and index persistence (:mod:`repro.io`)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import CiNCT
from repro.exceptions import ConstructionError, DatasetError
from repro.fmindex import sample_patterns
from repro.io import (
    load_cinct,
    load_dataset_csv,
    load_dataset_jsonl,
    save_cinct,
    save_dataset_csv,
    save_dataset_jsonl,
)
from repro.io.index_io import load_bwt_result, save_bwt_result
from repro.trajectories import Trajectory, TrajectoryDataset


@pytest.fixture()
def timed_dataset():
    trajectories = [
        Trajectory(edges=["a", "b", "c"], timestamps=[0.0, 10.0, 25.0]),
        Trajectory(edges=[("n1", "n2"), ("n2", "n3")], timestamps=[5.0, 9.0]),
        Trajectory(edges=["c", "d"], timestamps=[100.0, 130.0]),
    ]
    return TrajectoryDataset(name="io-fixture", trajectories=trajectories)


class TestDatasetJsonl:
    def test_roundtrip(self, timed_dataset, tmp_path):
        path = save_dataset_jsonl(timed_dataset, tmp_path / "data.jsonl")
        loaded = load_dataset_jsonl(path)
        assert len(loaded) == len(timed_dataset)
        for original, reloaded in zip(timed_dataset, loaded):
            assert list(original.edges) == list(reloaded.edges)
            assert original.timestamps == pytest.approx(reloaded.timestamps)

    def test_tuple_edges_stay_hashable(self, timed_dataset, tmp_path):
        path = save_dataset_jsonl(timed_dataset, tmp_path / "data.jsonl")
        loaded = load_dataset_jsonl(path)
        assert loaded.trajectories[1].edges[0] == ("n1", "n2")
        # The loaded dataset must be indexable end to end.
        index, trajectory_string = CiNCT.from_trajectories([t.edges for t in loaded])
        assert index.count(trajectory_string.encode_pattern([("n1", "n2"), ("n2", "n3")])) == 1

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset_jsonl(tmp_path / "nope.jsonl")

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"edges": ["a"]}\nnot-json\n', encoding="utf-8")
        with pytest.raises(DatasetError):
            load_dataset_jsonl(path)

    def test_trajectory_without_edges_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"edges": []}\n', encoding="utf-8")
        with pytest.raises(DatasetError):
            load_dataset_jsonl(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(DatasetError):
            load_dataset_jsonl(path)


class TestDatasetCsv:
    def test_roundtrip(self, timed_dataset, tmp_path):
        path = save_dataset_csv(timed_dataset, tmp_path / "data.csv")
        loaded = load_dataset_csv(path)
        assert len(loaded) == len(timed_dataset)
        for original, reloaded in zip(timed_dataset, loaded):
            assert list(original.edges) == list(reloaded.edges)
            assert original.timestamps == pytest.approx(reloaded.timestamps)

    def test_roundtrip_without_timestamps(self, tmp_path):
        dataset = TrajectoryDataset(
            name="plain",
            trajectories=[Trajectory(edges=["x", "y"]), Trajectory(edges=["y", "z", "x"])],
        )
        loaded = load_dataset_csv(save_dataset_csv(dataset, tmp_path / "plain.csv"))
        assert [t.edges for t in loaded] == [t.edges for t in dataset]
        assert all(t.timestamps is None for t in loaded)

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,bar\n1,2\n", encoding="utf-8")
        with pytest.raises(DatasetError):
            load_dataset_csv(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset_csv(tmp_path / "nope.csv")


class TestBWTPersistence:
    def test_roundtrip(self, medium_bwt, tmp_path):
        path = save_bwt_result(medium_bwt, tmp_path / "bwt.npz")
        loaded = load_bwt_result(path)
        np.testing.assert_array_equal(loaded.text, medium_bwt.text)
        np.testing.assert_array_equal(loaded.bwt, medium_bwt.bwt)
        np.testing.assert_array_equal(loaded.suffix_array, medium_bwt.suffix_array)
        np.testing.assert_array_equal(loaded.c_array, medium_bwt.c_array)

    def test_missing_archive(self, tmp_path):
        with pytest.raises(DatasetError):
            load_bwt_result(tmp_path / "missing.npz")


class TestIndexPersistence:
    def test_counts_survive_roundtrip(self, medium_bwt, medium_reference, tmp_path):
        index = CiNCT(medium_bwt, block_size=31, sa_sample_rate=8)
        save_cinct(index, medium_bwt, tmp_path / "index")
        saved = load_cinct(tmp_path / "index")
        rng = np.random.default_rng(11)
        for pattern in sample_patterns(medium_bwt, 6, 20, rng):
            assert saved.index.count(pattern) == medium_reference.count(pattern)

    def test_parameters_survive_roundtrip(self, medium_bwt, tmp_path):
        index = CiNCT(medium_bwt, block_size=15, sa_sample_rate=4)
        save_cinct(index, medium_bwt, tmp_path / "index")
        saved = load_cinct(tmp_path / "index")
        assert saved.index.block_size == 15
        assert saved.index.labeling_strategy == "bigram"
        # locate still works because the SA sampling rate was persisted
        assert isinstance(saved.index.locate(0), int)

    def test_alphabet_roundtrip(self, medium_bwt, medium_trajectory_string, medium_cinct, tmp_path):
        save_cinct(medium_cinct, medium_bwt, tmp_path / "index", trajectory_string=medium_trajectory_string)
        saved = load_cinct(tmp_path / "index")
        assert saved.alphabet is not None
        edges = medium_trajectory_string.trajectory_edges(0)[:3]
        pattern = saved.encode_pattern(edges)
        assert pattern == medium_trajectory_string.encode_pattern(edges)

    def test_encode_without_alphabet_raises(self, medium_bwt, medium_cinct, tmp_path):
        save_cinct(medium_cinct, medium_bwt, tmp_path / "index")
        saved = load_cinct(tmp_path / "index")
        with pytest.raises(ConstructionError):
            saved.encode_pattern(["a"])

    def test_missing_metadata(self, tmp_path):
        with pytest.raises(DatasetError):
            load_cinct(tmp_path / "nothing-here")

    def test_corrupted_metadata_version(self, medium_bwt, medium_cinct, tmp_path):
        directory = save_cinct(medium_cinct, medium_bwt, tmp_path / "index")
        metadata_path = directory / "index.json"
        metadata = json.loads(metadata_path.read_text(encoding="utf-8"))
        metadata["format_version"] = 999
        metadata_path.write_text(json.dumps(metadata), encoding="utf-8")
        with pytest.raises(ConstructionError):
            load_cinct(directory)

    def test_mismatched_metadata_rejected(self, medium_bwt, medium_cinct, tmp_path):
        directory = save_cinct(medium_cinct, medium_bwt, tmp_path / "index")
        metadata_path = directory / "index.json"
        metadata = json.loads(metadata_path.read_text(encoding="utf-8"))
        metadata["length"] = metadata["length"] + 1
        metadata_path.write_text(json.dumps(metadata), encoding="utf-8")
        with pytest.raises(ConstructionError):
            load_cinct(directory)
