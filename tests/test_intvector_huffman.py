"""Tests for fixed-width integer vectors and Huffman coding."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import empirical_entropy_h0
from repro.exceptions import ConstructionError, QueryError
from repro.succinct import (
    IntVector,
    average_code_length,
    bits_needed,
    build_huffman_code,
    frequencies_of,
    prefix_sums,
)


class TestBitsNeeded:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 1), (1, 1), (2, 2), (3, 2), (4, 3), (255, 8), (256, 9), (1023, 10)],
    )
    def test_values(self, value, expected):
        assert bits_needed(value) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bits_needed(-1)


class TestIntVector:
    def test_basic_access(self):
        vec = IntVector([3, 1, 4, 1, 5])
        assert len(vec) == 5
        assert vec[2] == 4
        assert list(vec) == [3, 1, 4, 1, 5]

    def test_width_inferred(self):
        assert IntVector([0, 1, 7]).width == 3
        assert IntVector([]).width == 1

    def test_explicit_width(self):
        assert IntVector([1, 2, 3], width=10).width == 10

    def test_width_too_small_rejected(self):
        with pytest.raises(ValueError):
            IntVector([8], width=3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            IntVector([-1, 2])

    def test_out_of_range_access(self):
        vec = IntVector([1, 2])
        with pytest.raises(QueryError):
            vec[2]

    def test_size_in_bits(self):
        vec = IntVector([1] * 100, width=7)
        assert vec.size_in_bits() == 100 * 7 + 64

    def test_to_numpy_is_copy(self):
        vec = IntVector([1, 2, 3])
        arr = vec.to_numpy()
        arr[0] = 99
        assert vec[0] == 1


class TestPrefixSums:
    def test_simple(self):
        assert prefix_sums([2, 3, 0, 1]) == [0, 2, 5, 5, 6]

    def test_empty(self):
        assert prefix_sums([]) == [0]


class TestHuffman:
    def test_single_symbol(self):
        code = build_huffman_code({7: 100})
        assert code.lengths == {7: 1}

    def test_empty_rejected(self):
        with pytest.raises(ConstructionError):
            build_huffman_code({})
        with pytest.raises(ConstructionError):
            build_huffman_code({1: 0})

    def test_two_symbols_get_one_bit_each(self):
        code = build_huffman_code({0: 5, 1: 3})
        assert sorted(code.lengths.values()) == [1, 1]

    def test_codes_are_prefix_free(self):
        frequencies = {0: 50, 1: 20, 2: 15, 3: 10, 4: 5}
        code = build_huffman_code(frequencies)
        codes = list(code.codes.values())
        for i, first in enumerate(codes):
            for second in codes[i + 1 :]:
                shorter, longer = sorted((first, second), key=len)
                assert longer[: len(shorter)] != shorter

    def test_more_frequent_symbols_get_shorter_codes(self):
        code = build_huffman_code({0: 1000, 1: 10, 2: 10, 3: 10, 4: 10})
        assert code.lengths[0] <= min(code.lengths[s] for s in (1, 2, 3, 4))

    def test_kraft_inequality_tight(self):
        frequencies = {s: 1 + s for s in range(17)}
        code = build_huffman_code(frequencies)
        kraft = sum(2 ** -length for length in code.lengths.values())
        assert math.isclose(kraft, 1.0)

    def test_encoded_length_matches_lengths(self):
        frequencies = {0: 4, 1: 2, 2: 1}
        code = build_huffman_code(frequencies)
        expected = sum(code.lengths[s] * c for s, c in frequencies.items())
        assert code.encoded_length(frequencies) == expected

    def test_average_length_within_entropy_plus_one(self):
        """Huffman is optimal: H0 <= average code length < H0 + 1."""
        sequence = [0] * 60 + [1] * 25 + [2] * 10 + [3] * 5
        frequencies = frequencies_of(sequence)
        code = build_huffman_code(frequencies)
        average = average_code_length(code, frequencies)
        entropy = empirical_entropy_h0(sequence)
        assert entropy <= average + 1e-9
        assert average < entropy + 1.0

    def test_frequencies_of(self):
        assert frequencies_of([1, 1, 2, 3, 3, 3]) == {1: 2, 2: 1, 3: 3}

    def test_deterministic(self):
        frequencies = {s: (s * 7) % 13 + 1 for s in range(30)}
        first = build_huffman_code(frequencies)
        second = build_huffman_code(frequencies)
        assert first.codes == second.codes


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=30), min_size=2, max_size=300))
def test_huffman_is_prefix_free_and_near_optimal(sequence):
    frequencies = frequencies_of(sequence)
    code = build_huffman_code(frequencies)
    # Prefix-free: no code is a prefix of another.
    codes = sorted(code.codes.values(), key=len)
    for i, shorter in enumerate(codes):
        for longer in codes[i + 1 :]:
            assert longer[: len(shorter)] != shorter or shorter == longer
    # Optimality band (only meaningful with at least two distinct symbols).
    if len(frequencies) >= 2:
        average = average_code_length(code, frequencies)
        entropy = empirical_entropy_h0(sequence)
        assert entropy - 1e-9 <= average < entropy + 1.0
