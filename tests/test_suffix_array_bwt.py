"""Tests for suffix arrays, the BWT and the trajectory string."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConstructionError
from repro.strings import (
    burrows_wheeler_transform,
    compute_c_array,
    compute_counts,
    inverse_suffix_array,
    invert_bwt,
    lf_mapping,
    suffix_array,
    suffix_array_naive,
)


def _with_sentinel(symbols: list[int]) -> np.ndarray:
    """Append the unique minimal sentinel 0 after shifting symbols up by 1."""
    return np.asarray([s + 1 for s in symbols] + [0], dtype=np.int64)


class TestSuffixArray:
    def test_known_small_example(self):
        # "banana$" with a=1,b=2,n=3 and $=0
        text = np.asarray([2, 1, 3, 1, 3, 1, 0])
        assert list(suffix_array(text)) == [6, 5, 3, 1, 0, 4, 2]

    @pytest.mark.parametrize("n", [1, 2, 3, 10, 50, 200])
    def test_matches_naive(self, n):
        rng = np.random.default_rng(n)
        text = _with_sentinel([int(x) for x in rng.integers(0, 5, n)])
        assert list(suffix_array(text)) == list(suffix_array_naive(text))

    def test_empty(self):
        assert suffix_array([]).size == 0

    def test_rejects_negative_symbols(self):
        with pytest.raises(ConstructionError):
            suffix_array([1, -2, 0])

    def test_inverse_suffix_array(self):
        text = _with_sentinel([3, 1, 2, 3, 1])
        sa = suffix_array(text)
        isa = inverse_suffix_array(sa)
        for j in range(len(text)):
            assert isa[sa[j]] == j

    def test_all_suffixes_sorted(self):
        rng = np.random.default_rng(9)
        text = _with_sentinel([int(x) for x in rng.integers(0, 3, 80)])
        sa = suffix_array(text)
        suffixes = [tuple(int(x) for x in text[i:]) for i in sa]
        assert suffixes == sorted(suffixes)


class TestBWT:
    def test_paper_example_shape(self, paper_bwt, paper_trajectory_string):
        assert paper_bwt.length == paper_trajectory_string.length == 16
        # Exactly one terminator, four separators.
        assert int(np.count_nonzero(paper_bwt.bwt == 0)) == 1
        assert int(np.count_nonzero(paper_bwt.bwt == 1)) == 4

    def test_bwt_is_permutation_of_text(self, medium_bwt):
        assert sorted(medium_bwt.bwt.tolist()) == sorted(medium_bwt.text.tolist())

    def test_invert_recovers_text(self, medium_bwt):
        assert list(invert_bwt(medium_bwt)) == list(medium_bwt.text)

    @pytest.mark.parametrize("n", [2, 5, 30, 120])
    def test_invert_random_texts(self, n):
        rng = np.random.default_rng(n * 7)
        text = _with_sentinel([int(x) for x in rng.integers(0, 6, n)])
        result = burrows_wheeler_transform(text)
        assert list(invert_bwt(result)) == list(text)

    def test_rejects_empty(self):
        with pytest.raises(ConstructionError):
            burrows_wheeler_transform([])

    def test_rejects_missing_sentinel(self):
        with pytest.raises(ConstructionError):
            burrows_wheeler_transform([3, 1, 2])  # final symbol is not the unique minimum

    def test_rejects_duplicate_sentinel(self):
        with pytest.raises(ConstructionError):
            burrows_wheeler_transform([0, 2, 0])

    def test_c_array_is_cumulative(self, medium_bwt):
        counts = medium_bwt.counts
        c = medium_bwt.c_array
        assert c[0] == 0
        assert c[-1] == medium_bwt.length
        for w in range(medium_bwt.sigma):
            assert c[w + 1] - c[w] == counts[w]

    def test_counts_match_text(self, medium_bwt):
        expected = np.bincount(medium_bwt.text, minlength=medium_bwt.sigma)
        assert list(medium_bwt.counts) == list(expected)

    def test_suffix_range_of_symbol(self, paper_bwt):
        for symbol in range(paper_bwt.sigma):
            sp, ep = paper_bwt.suffix_range_of_symbol(symbol)
            assert ep - sp == paper_bwt.counts[symbol]

    def test_lf_mapping_is_permutation(self, paper_bwt):
        lf = lf_mapping(paper_bwt)
        assert sorted(lf.tolist()) == list(range(paper_bwt.length))

    def test_lf_mapping_walks_text_backwards(self, paper_bwt):
        """Following LF from row 0 visits suffix positions n-2, n-3, ..."""
        lf = lf_mapping(paper_bwt)
        sa = paper_bwt.suffix_array
        row = 0
        position = int(sa[row])
        for _ in range(paper_bwt.length - 1):
            row = int(lf[row])
            expected = (position - 1) % paper_bwt.length
            assert int(sa[row]) == expected
            position = expected

    def test_compute_counts_sigma_too_small(self):
        with pytest.raises(ConstructionError):
            compute_counts(np.asarray([0, 5]), sigma=3)

    def test_compute_c_array_empty(self):
        assert list(compute_c_array(np.zeros(0, dtype=np.int64))) == [0]


class TestTrajectoryStringBasics:
    def test_paper_example_text(self, paper_trajectory_string):
        # T = rev(T1) $ rev(T2) $ rev(T3) $ rev(T4) $ #
        ts = paper_trajectory_string
        assert ts.n_trajectories == 4
        assert ts.trajectory_lengths == [4, 3, 2, 2]
        assert ts.text[-1] == 0
        assert ts.trajectory_edges(0) == ["A", "B", "E", "F"]
        assert ts.trajectory_edges(3) == ["A", "D"]

    def test_symbols_travel_order(self, paper_trajectory_string):
        symbols = paper_trajectory_string.trajectory_symbols(1)
        decoded = paper_trajectory_string.alphabet.decode_path(int(s) for s in symbols)
        assert decoded == ["A", "B", "C"]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=150))
def test_bwt_roundtrip_property(symbols):
    text = _with_sentinel(symbols)
    result = burrows_wheeler_transform(text)
    assert list(invert_bwt(result)) == list(text)
    assert list(result.suffix_array) == list(suffix_array_naive(text))
