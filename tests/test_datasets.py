"""Tests for the dataset registry (synthetic analogues of the paper's datasets)."""

from __future__ import annotations

import pytest

from repro.core import ETGraph
from repro.datasets import (
    chess_like,
    load_dataset,
    mogen_like,
    paper_dataset_names,
    randwalk,
    roma_like,
    singapore2_like,
    singapore_like,
)
from repro.exceptions import DatasetError

SMALL = 0.12


@pytest.fixture(scope="module")
def small_singapore():
    return singapore_like(scale=SMALL)


@pytest.fixture(scope="module")
def small_singapore2():
    return singapore2_like(scale=SMALL)


class TestBundleShape:
    @pytest.mark.parametrize(
        "builder,kwargs",
        [
            (singapore_like, {"scale": SMALL}),
            (singapore2_like, {"scale": SMALL}),
            (roma_like, {"scale": 0.3}),
            (mogen_like, {"scale": 0.08}),
            (chess_like, {"scale": 0.1}),
            (randwalk, {"sigma": 256, "length_factor": 8}),
        ],
    )
    def test_bundles_are_well_formed(self, builder, kwargs):
        bundle = builder(**kwargs)
        assert bundle.length == bundle.text.size
        assert bundle.n_trajectories >= 1
        assert int(bundle.text[-1]) == 0
        assert int(bundle.text.max()) < bundle.sigma
        total_symbols = sum(len(t) for t in bundle.symbol_trajectories)
        assert bundle.length == total_symbols + bundle.n_trajectories + 1

    def test_network_datasets_carry_network(self, small_singapore):
        assert small_singapore.dataset is not None
        assert small_singapore.dataset.network is not None
        assert small_singapore.trajectory_string is not None

    def test_symbol_datasets_have_no_network(self):
        bundle = chess_like(scale=0.1)
        assert bundle.dataset is None


class TestDatasetProperties:
    def test_singapore_gaps_make_denser_et_graph(self):
        """Table III: d-bar drops sharply after gap interpolation (26.8 -> 4.0).

        The effect needs enough observations per road segment, so this test
        builds at a larger scale and gap rate than the other dataset tests.
        """
        gapped_bundle = singapore_like(scale=0.6, gap_probability=0.2)
        repaired_bundle = singapore2_like(scale=0.6, gap_probability=0.2)
        gapped = ETGraph(gapped_bundle.text, sigma=gapped_bundle.sigma)
        repaired = ETGraph(repaired_bundle.text, sigma=repaired_bundle.sigma)
        assert gapped.average_out_degree() > repaired.average_out_degree()

    def test_singapore2_is_fully_connected(self, small_singapore2):
        assert small_singapore2.dataset.connected_fraction() == pytest.approx(1.0)

    def test_singapore_is_not_fully_connected(self, small_singapore):
        assert small_singapore.dataset.connected_fraction() < 1.0

    def test_chess_analogue_is_very_sparse(self):
        bundle = chess_like(scale=0.1)
        graph = ETGraph(bundle.text, sigma=bundle.sigma)
        assert graph.average_out_degree() < 2.5

    def test_randwalk_degree_parameter(self):
        low = randwalk(sigma=256, average_out_degree=2.0, length_factor=8, seed=5)
        high = randwalk(sigma=256, average_out_degree=8.0, length_factor=8, seed=5)
        low_degree = ETGraph(low.text, sigma=low.sigma).average_out_degree()
        high_degree = ETGraph(high.text, sigma=high.sigma).average_out_degree()
        assert high_degree > low_degree

    def test_randwalk_length_factor(self):
        bundle = randwalk(sigma=128, length_factor=10, seed=3)
        assert bundle.length >= 10 * 128

    def test_roma_trajectories_are_connected(self):
        bundle = roma_like(scale=0.3)
        network = bundle.dataset.network
        for trajectory in bundle.dataset.trajectories:
            assert trajectory.is_connected(network)


class TestDeterminismAndScale:
    def test_same_seed_same_data(self):
        first = singapore_like(scale=SMALL, seed=3)
        second = singapore_like(scale=SMALL, seed=3)
        assert list(first.text) == list(second.text)

    def test_different_seed_different_data(self):
        first = singapore_like(scale=SMALL, seed=3)
        second = singapore_like(scale=SMALL, seed=4)
        assert list(first.text) != list(second.text)

    def test_scale_controls_size(self):
        small = chess_like(scale=0.05)
        large = chess_like(scale=0.2)
        assert large.length > small.length

    def test_scale_too_small_rejected(self):
        with pytest.raises(DatasetError):
            singapore_like(scale=1e-6)


class TestRegistry:
    def test_names(self):
        assert paper_dataset_names() == ["singapore", "singapore-2", "roma", "mo-gen", "chess"]

    def test_load_by_name(self):
        bundle = load_dataset("chess", scale=0.1)
        assert bundle.name == "Chess"

    def test_load_by_name_with_seed(self):
        bundle = load_dataset("chess", scale=0.1, seed=99)
        assert bundle.length > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("porto")
