"""Fan-out reliability: policies, fault injection, degraded merges, health.

The contract under test: a failing shard surfaces as one canonical
:class:`~repro.exceptions.ShardExecutionError` naming the shard and its
attempt history (default fail-fast), or — with
``EngineConfig.degraded_results`` on — the surviving shards' answers are
merged into results flagged ``degraded=True`` with the failed shards listed,
equal to the unsharded answer minus the failed shards' contributions.
Deadlines bound how long a hung shard can stall a batch; retries recover
transient faults; ``health()`` reports the bookkeeping.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    CountQuery,
    EngineConfig,
    LocateQuery,
    ShardPolicy,
    ShardTimeoutError,
    TrajectoryEngine,
    build_engine,
    run_shard_attempts,
)
from repro.exceptions import QueryError, ReproError, ShardExecutionError
from repro.network import grid_network
from repro.reliability import faults
from repro.trajectories import TrajectoryDataset, straight_biased_walks


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear_faults()
    yield
    faults.clear_faults()


@pytest.fixture(scope="module")
def fleet_dataset():
    network = grid_network(5, 5)
    rng = np.random.default_rng(77)
    trajectories = straight_biased_walks(
        network, n_trajectories=18, min_length=5, max_length=12, rng=rng
    )
    for trajectory in trajectories:
        departure = float(rng.uniform(0, 300))
        dwell = rng.uniform(4, 16, size=len(trajectory.edges))
        trajectory.timestamps = list(departure + np.cumsum(dwell) - dwell[0])
    return TrajectoryDataset(
        name="reliability-fleet", trajectories=trajectories, network=network
    )


@pytest.fixture(scope="module")
def probe_path(fleet_dataset):
    """A single-edge path present on *every* shard of a 3-shard fleet.

    Faults are armed per shard, and the fan-out skips shards whose alphabet
    cannot contain the pattern — a probe only one shard knows would never
    exercise a fault on the others.
    """
    per_shard: dict[int, set] = {0: set(), 1: set(), 2: set()}
    for trajectory_id, trajectory in enumerate(fleet_dataset.trajectories):
        per_shard[trajectory_id % 3].update(trajectory.edges)
    common = per_shard[0] & per_shard[1] & per_shard[2]
    assert common, "fixture dataset must share an edge across all shards"
    return [sorted(common)[0]]


def _sharded(fleet_dataset, **overrides):
    # cache_size=0: these tests re-run identical queries across fault states,
    # so a cached answer would mask the fan-out entirely.
    config = EngineConfig(
        backend="cinct", num_shards=3, shard_workers=1, cache_size=0, **overrides
    )
    return build_engine(fleet_dataset, config)


# --------------------------------------------------------------------------- #
# fail-fast default
# --------------------------------------------------------------------------- #
def test_failing_shard_raises_canonical_error(fleet_dataset, probe_path):
    engine = _sharded(fleet_dataset)
    with faults.shard_fault(1, "raise"):
        with pytest.raises(ShardExecutionError) as excinfo:
            engine.count(probe_path)
    error = excinfo.value
    assert error.shard_id == 1
    assert "shard 1" in str(error)
    assert "fan-out" in str(error)
    assert len(error.attempts) == 1
    assert "FaultInjected" in error.attempts[0].error


def test_fault_cleared_restores_answers(fleet_dataset, probe_path):
    engine = _sharded(fleet_dataset)
    reference = TrajectoryEngine.build(fleet_dataset, EngineConfig(backend="cinct"))
    with faults.shard_fault(1, "raise"):
        with pytest.raises(ShardExecutionError):
            engine.count(probe_path)
    assert engine.count(probe_path) == reference.count(probe_path)


def test_pooled_fan_out_also_fails_canonically(fleet_dataset, probe_path):
    # Same contract through the concurrent path (workers unbounded).
    engine = build_engine(
        fleet_dataset, EngineConfig(backend="cinct", num_shards=3)
    )
    with faults.shard_fault(2, "raise"):
        with pytest.raises(ShardExecutionError) as excinfo:
            engine.count(probe_path)
    assert excinfo.value.shard_id == 2


def test_deterministic_failures_are_not_retried(fleet_dataset):
    # A ReproError is classified non-retryable: one attempt even with budget.
    engine = _sharded(fleet_dataset, shard_retries=3)
    with pytest.raises((QueryError, ReproError)):
        engine.count([])  # empty path is rejected deterministically


# --------------------------------------------------------------------------- #
# degraded-mode merges
# --------------------------------------------------------------------------- #
def test_degraded_merge_flags_results(fleet_dataset, probe_path):
    engine = _sharded(fleet_dataset, degraded_results=True)
    healthy = engine.run_many([CountQuery(tuple(probe_path))])[0]
    assert healthy.degraded is False
    assert healthy.failed_shards == ()
    with faults.shard_fault(1, "raise"):
        degraded = engine.run_many([CountQuery(tuple(probe_path))])[0]
    assert degraded.degraded is True
    assert degraded.failed_shards == (1,)
    assert degraded.count <= healthy.count


def test_degraded_merge_equals_surviving_shards(fleet_dataset, probe_path):
    engine = _sharded(fleet_dataset, degraded_results=True)
    expected = sum(
        shard.count(probe_path)
        for shard_id, shard in enumerate(engine.shards)
        if shard_id != 1 and shard is not None
    )
    with faults.shard_fault(1, "raise"):
        result = engine.run_many([CountQuery(tuple(probe_path))])[0]
    assert result.count == expected


def test_degraded_locate_drops_failed_shard_matches(fleet_dataset, probe_path):
    engine = _sharded(
        fleet_dataset, degraded_results=True, sa_sample_rate=4
    )
    healthy = engine.run_many([LocateQuery(tuple(probe_path))])[0]
    with faults.shard_fault(0, "raise"):
        degraded = engine.run_many([LocateQuery(tuple(probe_path))])[0]
    assert degraded.degraded is True
    assert degraded.failed_shards == (0,)
    surviving = {m.trajectory_id for m in degraded.matches}
    assert surviving <= {m.trajectory_id for m in healthy.matches}
    router = engine.router
    assert all(router.shard_of(tid) != 0 for tid in surviving)


def test_degraded_scalar_count_still_answers(fleet_dataset, probe_path):
    engine = _sharded(fleet_dataset, degraded_results=True)
    with faults.shard_fault(1, "raise"):
        count = engine.count(probe_path)  # scalar API: the flag is dropped
    assert isinstance(count, int)


# --------------------------------------------------------------------------- #
# retries and deadlines
# --------------------------------------------------------------------------- #
def test_transient_fault_recovered_by_retry(fleet_dataset, probe_path):
    engine = _sharded(fleet_dataset, shard_retries=2)
    reference = TrajectoryEngine.build(fleet_dataset, EngineConfig(backend="cinct"))
    with faults.shard_fault(1, "raise", times=1):  # fails once, then heals
        assert engine.count(probe_path) == reference.count(probe_path)


def test_retry_budget_exhaustion_keeps_history(fleet_dataset, probe_path):
    engine = _sharded(fleet_dataset, shard_retries=2)
    with faults.shard_fault(1, "raise"):  # fails every attempt
        with pytest.raises(ShardExecutionError) as excinfo:
            engine.count(probe_path)
    assert [a.number for a in excinfo.value.attempts] == [1, 2, 3]


def test_hung_shard_bounded_by_deadline(fleet_dataset, probe_path):
    engine = _sharded(
        fleet_dataset, shard_deadline=0.05, degraded_results=True
    )
    with faults.shard_fault(1, "hang", delay_ms=10_000):
        result = engine.run_many([CountQuery(tuple(probe_path))])[0]
    assert result.degraded is True
    assert result.failed_shards == (1,)


def test_deadline_timeout_classified_retryable():
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] == 1:
            import time

            time.sleep(0.2)
        return "ok"

    policy = ShardPolicy(deadline=0.05, max_attempts=2, backoff_base=0.0)
    assert run_shard_attempts(7, flaky, policy) == "ok"
    assert calls["n"] == 2


def test_run_shard_attempts_names_shard_and_operation():
    policy = ShardPolicy(max_attempts=2, backoff_base=0.0)

    def boom():
        raise RuntimeError("disk on fire")

    with pytest.raises(ShardExecutionError) as excinfo:
        run_shard_attempts(4, boom, policy, operation="fan-out")
    message = str(excinfo.value)
    assert "shard 4" in message and "2 attempt(s)" in message
    assert "disk on fire" in message
    assert ShardPolicy.retryable(ShardTimeoutError(0.1))
    assert not ShardPolicy.retryable(ReproError("deterministic"))


# --------------------------------------------------------------------------- #
# health surface
# --------------------------------------------------------------------------- #
def test_health_tracks_failures_and_recovery(fleet_dataset, probe_path):
    engine = _sharded(fleet_dataset, degraded_results=True)
    assert engine.health()["status"] == "ok"
    with faults.shard_fault(1, "raise"):
        engine.count(probe_path)
    health = engine.health()
    assert health["status"] == "failing"
    assert health["failing_shards"] == 1
    assert health["shards"][1]["status"] == "failing"
    assert health["shards"][1]["failures"] == 1
    assert "FaultInjected" in health["shards"][1]["last_error"]
    engine.count(probe_path)  # healed
    health = engine.health()
    assert health["status"] == "ok"
    assert health["shards"][1]["consecutive_failures"] == 0
    assert health["shards"][1]["failures"] == 1  # history is kept


def test_unsharded_health_surface(fleet_dataset):
    engine = TrajectoryEngine.build(fleet_dataset, EngineConfig(backend="cinct"))
    health = engine.health()
    assert health["engine"] == "single"
    assert health["status"] == "ok"
    assert health["num_shards"] == 1


def test_configure_reliability_overrides_policy(fleet_dataset, probe_path):
    engine = _sharded(fleet_dataset)
    assert engine.policy.is_noop
    engine.configure_reliability(
        deadline=0.5, retries=2, degraded_results=True
    )
    assert engine.policy.deadline == 0.5
    assert engine.policy.max_attempts == 3
    assert engine.config.degraded_results is True
    with faults.shard_fault(1, "raise"):
        result = engine.run_many([CountQuery(tuple(probe_path))])[0]
    assert result.degraded is True


# --------------------------------------------------------------------------- #
# env-driven faults
# --------------------------------------------------------------------------- #
def test_env_driven_shard_fault(fleet_dataset, probe_path, monkeypatch):
    engine = _sharded(fleet_dataset)
    monkeypatch.setenv("REPRO_SHARD_FAULT", "1:raise")
    faults.reload_env()
    with pytest.raises(ShardExecutionError) as excinfo:
        engine.count(probe_path)
    assert excinfo.value.shard_id == 1


def test_env_spec_parsing_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_FAULT", "not-a-spec")
    with pytest.raises(ValueError):
        faults.reload_env()
    monkeypatch.setenv("REPRO_SHARD_FAULT", "0:explode")
    with pytest.raises(ValueError):
        faults.reload_env()


# --------------------------------------------------------------------------- #
# growth / consolidation wrapping
# --------------------------------------------------------------------------- #
def test_growth_failure_names_shard(fleet_dataset):
    engine = build_engine(
        fleet_dataset,
        EngineConfig(backend="partitioned-cinct", num_shards=3, shard_workers=1),
    )
    network = fleet_dataset.network
    rng = np.random.default_rng(91)
    batch = straight_biased_walks(
        network, n_trajectories=3, min_length=4, max_length=8, rng=rng
    )

    target = engine.router.shard_of(engine.n_trajectories)
    shard = engine.shards[target]

    def explode(*args, **kwargs):
        raise RuntimeError("backend wedged mid-growth")

    original = shard.add_batch
    shard.add_batch = explode
    try:
        with pytest.raises(ShardExecutionError) as excinfo:
            engine.add_batch(batch)
    finally:
        shard.add_batch = original
    assert excinfo.value.shard_id == target
    assert "add_batch" in str(excinfo.value)
    assert engine.health()["shards"][target]["failures"] == 1


def test_consolidate_failure_names_shard(fleet_dataset):
    engine = build_engine(
        fleet_dataset,
        EngineConfig(backend="partitioned-cinct", num_shards=3, shard_workers=1),
    )
    shard = next(s for s in engine.shards if s is not None)
    shard_id = engine.shards.index(shard)

    def explode(*args, **kwargs):
        raise RuntimeError("compaction died")

    original = shard.consolidate
    shard.consolidate = explode
    try:
        with pytest.raises(ShardExecutionError) as excinfo:
            engine.consolidate()
    finally:
        shard.consolidate = original
    assert excinfo.value.shard_id == shard_id
    assert "consolidate" in str(excinfo.value)
