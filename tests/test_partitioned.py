"""Tests for the partitioned (growing-data) CiNCT index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CiNCT, PartitionedCiNCT
from repro.exceptions import ConstructionError, QueryError


BATCH_1 = [["a", "b", "c"], ["b", "c", "d"], ["a", "b", "c", "d"]]
BATCH_2 = [["c", "d", "e"], ["a", "b"], ["e", "a", "b", "c"]]
BATCH_3 = [["d", "e", "a"], ["b", "c", "d", "e"]]


def monolithic_count(batches, path):
    """Count path occurrences with a single CiNCT over all batches (oracle)."""
    trajectories = [t for batch in batches for t in batch]
    index, trajectory_string = CiNCT.from_trajectories(trajectories)
    return index.count(trajectory_string.encode_pattern(path))


class TestGrowth:
    def test_single_batch_matches_monolithic(self):
        partitioned = PartitionedCiNCT(block_size=15)
        partitioned.add_batch(BATCH_1)
        for path in (["a", "b"], ["b", "c"], ["c", "d"], ["a", "b", "c", "d"]):
            assert partitioned.count(path) == monolithic_count([BATCH_1], path)

    def test_multiple_batches_aggregate_counts(self):
        partitioned = PartitionedCiNCT(block_size=15)
        partitioned.add_batch(BATCH_1)
        partitioned.add_batch(BATCH_2)
        partitioned.add_batch(BATCH_3)
        assert partitioned.n_partitions == 3
        assert partitioned.n_trajectories == len(BATCH_1) + len(BATCH_2) + len(BATCH_3)
        for path in (["a", "b"], ["b", "c"], ["c", "d", "e"], ["e", "a"], ["a", "b", "c"]):
            assert partitioned.count(path) == monolithic_count([BATCH_1, BATCH_2, BATCH_3], path)

    def test_alphabet_grows_across_batches(self):
        partitioned = PartitionedCiNCT(block_size=15)
        partitioned.add_batch(BATCH_1)
        sigma_before = partitioned.alphabet.sigma
        partitioned.add_batch(BATCH_2)  # introduces "e"
        assert partitioned.alphabet.sigma == sigma_before + 1

    def test_unknown_segment_returns_zero(self):
        partitioned = PartitionedCiNCT(block_size=15)
        partitioned.add_batch(BATCH_1)
        assert partitioned.count(["z", "q"]) == 0
        assert not partitioned.contains(["z"])

    def test_counts_by_partition(self):
        partitioned = PartitionedCiNCT(block_size=15)
        partitioned.add_batch(BATCH_1)
        partitioned.add_batch(BATCH_2)
        per_partition = partitioned.counts_by_partition(["a", "b"])
        assert len(per_partition) == 2
        assert sum(per_partition) == partitioned.count(["a", "b"])
        assert partitioned.matching_partitions(["a", "b"]) == [0, 1]

    def test_rejects_empty_batch(self):
        partitioned = PartitionedCiNCT()
        with pytest.raises(ConstructionError):
            partitioned.add_batch([])

    def test_rejects_empty_trajectory(self):
        partitioned = PartitionedCiNCT()
        with pytest.raises(ConstructionError):
            partitioned.add_batch([["a", "b"], []])

    def test_query_on_empty_index_raises(self):
        partitioned = PartitionedCiNCT()
        with pytest.raises(QueryError):
            partitioned.count(["a"])

    def test_empty_path_raises(self):
        partitioned = PartitionedCiNCT()
        partitioned.add_batch(BATCH_1)
        with pytest.raises(QueryError):
            partitioned.count([])


class TestConsolidation:
    def test_consolidate_preserves_counts(self):
        partitioned = PartitionedCiNCT(block_size=15)
        partitioned.add_batch(BATCH_1)
        partitioned.add_batch(BATCH_2)
        before = {tuple(p): partitioned.count(p) for p in (["a", "b"], ["b", "c"], ["c", "d", "e"])}
        partitioned.consolidate()
        assert partitioned.n_partitions == 1
        for path, count in before.items():
            assert partitioned.count(list(path)) == count

    def test_automatic_tiered_merge(self):
        partitioned = PartitionedCiNCT(block_size=15, max_partitions=2)
        partitioned.add_batch(BATCH_1)
        partitioned.add_batch(BATCH_2)
        assert partitioned.n_partitions == 2
        partitioned.add_batch(BATCH_3)  # exceeds max_partitions -> tiered merge
        assert partitioned.n_partitions == 2
        assert partitioned.ingest_stats()["compaction"]["tiered_merges"] == 1
        for path in (["a", "b"], ["b", "c", "d", "e"]):
            assert partitioned.count(path) == monolithic_count([BATCH_1, BATCH_2, BATCH_3], path)

    def test_tiered_merge_keeps_locate_id_space_contiguous(self):
        partitioned = PartitionedCiNCT(block_size=15, max_partitions=2)
        for batch in (BATCH_1, BATCH_2, BATCH_3):
            partitioned.add_batch(batch)
        firsts = [p.first_trajectory_id for p in partitioned.partitions()]
        counts = [p.n_trajectories for p in partitioned.partitions()]
        expected = 0
        for first, count in zip(firsts, counts):
            assert first == expected
            expected += count
        assert expected == partitioned.n_trajectories

    def test_consolidate_empty_raises(self):
        partitioned = PartitionedCiNCT()
        with pytest.raises(ConstructionError):
            partitioned.consolidate()

    def test_invalid_max_partitions(self):
        with pytest.raises(ConstructionError):
            PartitionedCiNCT(max_partitions=0)


class TestSizeAccounting:
    def test_sizes_are_positive_and_additive(self):
        partitioned = PartitionedCiNCT(block_size=15)
        partitioned.add_batch(BATCH_1)
        partitioned.add_batch(BATCH_2)
        partition_sizes = [p.size_in_bits() for p in partitioned.partitions()]
        assert all(size > 0 for size in partition_sizes)
        assert partitioned.size_in_bits() == sum(partition_sizes)
        assert partitioned.bits_per_symbol() > 0

    def test_bits_per_symbol_requires_data(self):
        partitioned = PartitionedCiNCT()
        with pytest.raises(QueryError):
            partitioned.bits_per_symbol()


class TestRandomisedEquivalence:
    def test_random_batches_match_monolithic(self):
        rng = np.random.default_rng(7)
        edges = [f"e{i}" for i in range(12)]
        batches = []
        for _ in range(4):
            batch = []
            for _ in range(5):
                length = int(rng.integers(2, 8))
                start = int(rng.integers(0, len(edges)))
                batch.append([edges[(start + k) % len(edges)] for k in range(length)])
            batches.append(batch)
        partitioned = PartitionedCiNCT(block_size=15)
        for batch in batches:
            partitioned.add_batch(batch)
        for _ in range(20):
            length = int(rng.integers(1, 5))
            start = int(rng.integers(0, len(edges)))
            path = [edges[(start + k) % len(edges)] for k in range(length)]
            assert partitioned.count(path) == monolithic_count(batches, path)
