"""Tests for the plain bit vector (rank/select/access)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import QueryError
from repro.succinct import BitVector, bitvector_from_positions


def naive_rank1(bits: list[int], i: int) -> int:
    return sum(bits[:i])


class TestBasicAccess:
    def test_length(self):
        assert len(BitVector([1, 0, 1])) == 3

    def test_empty(self):
        bv = BitVector([])
        assert len(bv) == 0
        assert bv.n_ones == 0
        assert bv.rank1(0) == 0

    def test_access_values(self):
        bits = [1, 0, 0, 1, 1, 0, 1]
        bv = BitVector(bits)
        assert [bv.access(i) for i in range(len(bits))] == bits

    def test_getitem(self):
        bv = BitVector([0, 1])
        assert bv[0] == 0
        assert bv[1] == 1

    def test_iteration(self):
        bits = [1, 1, 0, 1, 0]
        assert list(BitVector(bits)) == bits

    def test_to_list_roundtrip(self):
        bits = [int(b) for b in np.random.default_rng(0).integers(0, 2, 200)]
        assert BitVector(bits).to_list() == bits

    def test_counts(self):
        bv = BitVector([1, 0, 1, 1])
        assert bv.n_ones == 3
        assert bv.n_zeros == 1

    def test_access_out_of_range(self):
        bv = BitVector([1, 0])
        with pytest.raises(QueryError):
            bv.access(2)
        with pytest.raises(QueryError):
            bv.access(-1)

    def test_accepts_numpy_input(self):
        arr = np.array([1, 0, 1], dtype=np.int64)
        assert BitVector(arr).to_list() == [1, 0, 1]

    def test_nonzero_values_become_one(self):
        assert BitVector([5, 0, -3]).to_list() == [1, 0, 1]


class TestRank:
    @pytest.mark.parametrize("n", [1, 7, 63, 64, 65, 129, 500])
    def test_rank_matches_naive(self, n):
        rng = np.random.default_rng(n)
        bits = [int(b) for b in rng.integers(0, 2, n)]
        bv = BitVector(bits)
        for i in range(n + 1):
            assert bv.rank1(i) == naive_rank1(bits, i)
            assert bv.rank0(i) == i - naive_rank1(bits, i)

    def test_rank_full_length(self):
        bits = [1] * 100
        assert BitVector(bits).rank1(100) == 100

    def test_rank_all_zeros(self):
        bv = BitVector([0] * 130)
        assert bv.rank1(130) == 0
        assert bv.rank0(130) == 130

    def test_rank_bit_dispatch(self):
        bv = BitVector([1, 0, 1, 0])
        assert bv.rank(1, 4) == 2
        assert bv.rank(0, 4) == 2

    def test_rank_out_of_range(self):
        bv = BitVector([1, 0])
        with pytest.raises(QueryError):
            bv.rank1(3)
        with pytest.raises(QueryError):
            bv.rank1(-1)


class TestSelect:
    def test_select1_simple(self):
        bv = BitVector([0, 1, 0, 1, 1])
        assert bv.select1(1) == 1
        assert bv.select1(2) == 3
        assert bv.select1(3) == 4

    def test_select0_simple(self):
        bv = BitVector([0, 1, 0, 1, 1])
        assert bv.select0(1) == 0
        assert bv.select0(2) == 2

    @pytest.mark.parametrize("n", [10, 100, 300])
    def test_select_inverse_of_rank(self, n):
        rng = np.random.default_rng(n)
        bits = [int(b) for b in rng.integers(0, 2, n)]
        bv = BitVector(bits)
        for k in range(1, bv.n_ones + 1):
            position = bv.select1(k)
            assert bits[position] == 1
            assert bv.rank1(position + 1) == k
        for k in range(1, bv.n_zeros + 1):
            position = bv.select0(k)
            assert bits[position] == 0
            assert bv.rank0(position + 1) == k

    def test_select_out_of_range(self):
        bv = BitVector([1, 0, 1])
        with pytest.raises(QueryError):
            bv.select1(0)
        with pytest.raises(QueryError):
            bv.select1(3)
        with pytest.raises(QueryError):
            bv.select0(2)


class TestSizeAndConstruction:
    def test_size_grows_with_length(self):
        small = BitVector([1] * 64)
        large = BitVector([1] * 6400)
        assert large.size_in_bits() > small.size_in_bits()

    def test_size_at_least_payload(self):
        bv = BitVector([0, 1] * 500)
        assert bv.size_in_bits() >= 1000

    def test_from_positions(self):
        bv = bitvector_from_positions(10, [0, 3, 9])
        assert bv.to_list() == [1, 0, 0, 1, 0, 0, 0, 0, 0, 1]

    def test_from_positions_out_of_range(self):
        with pytest.raises(QueryError):
            bitvector_from_positions(5, [5])


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=400))
def test_rank_select_properties(bits):
    """rank/select agree with the naive definitions on arbitrary bit lists."""
    bv = BitVector(bits)
    assert bv.rank1(len(bits)) == sum(bits)
    midpoint = len(bits) // 2
    assert bv.rank1(midpoint) == sum(bits[:midpoint])
    if bv.n_ones:
        k = (bv.n_ones + 1) // 2
        position = bv.select1(k)
        assert bits[position] == 1
        assert sum(bits[: position + 1]) == k
