"""Tests for GPS trace simulation and HMM map matching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DatasetError
from repro.mapmatching import HMMMapMatcher, match_traces
from repro.network import grid_network
from repro.trajectories import GPSTrace, shortest_path_trips, simulate_gps_trace


@pytest.fixture(scope="module")
def matching_setup():
    network = grid_network(6, 6, spacing=100.0)
    rng = np.random.default_rng(21)
    trips = shortest_path_trips(network, 8, rng, min_hops=5)
    return network, trips, rng


class TestGPSSimulation:
    def test_point_count(self, matching_setup):
        network, trips, rng = matching_setup
        trace = simulate_gps_trace(network, trips[0], rng, points_per_edge=3)
        assert len(trace) == 3 * len(trips[0])

    def test_points_near_route_for_small_noise(self, matching_setup):
        network, trips, _ = matching_setup
        rng = np.random.default_rng(0)
        trace = simulate_gps_trace(network, trips[0], rng, noise_std=1.0, points_per_edge=2)
        for point, edge in zip(trace.points[::2], trips[0].edges):
            mx, my = network.edge_midpoint(edge)
            assert abs(point.x - mx) < 60 and abs(point.y - my) < 60

    def test_timestamps_increase(self, matching_setup):
        network, trips, _ = matching_setup
        rng = np.random.default_rng(1)
        trace = simulate_gps_trace(network, trips[0], rng)
        times = [p.timestamp for p in trace.points]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_invalid_points_per_edge(self, matching_setup):
        network, trips, rng = matching_setup
        with pytest.raises(DatasetError):
            simulate_gps_trace(network, trips[0], rng, points_per_edge=0)

    def test_source_id_preserved(self, matching_setup):
        network, trips, rng = matching_setup
        trace = simulate_gps_trace(network, trips[1], rng)
        assert trace.source_trajectory_id == trips[1].trajectory_id


class TestHMMMapMatching:
    def test_low_noise_recovers_most_segments(self, matching_setup):
        network, trips, _ = matching_setup
        rng = np.random.default_rng(2)
        matcher = HMMMapMatcher(network, gps_noise_std=5.0, candidate_radius=60.0)
        recovered_total = 0
        truth_total = 0
        for trip in trips[:4]:
            trace = simulate_gps_trace(network, trip, rng, noise_std=5.0, points_per_edge=2)
            matched = matcher.match(trace)
            truth = set(trip.edges)
            recovered = set(matched.edges)
            recovered_total += len(truth & recovered)
            truth_total += len(truth)
        assert recovered_total / truth_total > 0.7

    def test_output_is_connected(self, matching_setup):
        network, trips, _ = matching_setup
        rng = np.random.default_rng(3)
        matcher = HMMMapMatcher(network, gps_noise_std=15.0, candidate_radius=90.0)
        trace = simulate_gps_trace(network, trips[0], rng, noise_std=15.0)
        matched = matcher.match(trace)
        assert matched.is_connected(network)

    def test_no_consecutive_duplicates(self, matching_setup):
        network, trips, _ = matching_setup
        rng = np.random.default_rng(4)
        matcher = HMMMapMatcher(network, gps_noise_std=10.0)
        trace = simulate_gps_trace(network, trips[2], rng, noise_std=10.0)
        matched = matcher.match(trace)
        for first, second in zip(matched.edges, matched.edges[1:]):
            assert first != second

    def test_empty_trace_rejected(self, matching_setup):
        network, _, _ = matching_setup
        matcher = HMMMapMatcher(network)
        with pytest.raises(DatasetError):
            matcher.match(GPSTrace(points=[]))

    def test_invalid_parameters_rejected(self, matching_setup):
        network, _, _ = matching_setup
        with pytest.raises(DatasetError):
            HMMMapMatcher(network, gps_noise_std=0.0)
        with pytest.raises(DatasetError):
            HMMMapMatcher(network, transition_beta=-1.0)

    def test_candidates_fall_back_to_nearest(self, matching_setup):
        network, _, _ = matching_setup
        matcher = HMMMapMatcher(network, candidate_radius=1e-6)
        found = matcher.candidates(250.0, 250.0)
        assert len(found) == 1

    def test_match_traces_batch(self, matching_setup):
        network, trips, _ = matching_setup
        rng = np.random.default_rng(5)
        matcher = HMMMapMatcher(network, gps_noise_std=8.0)
        traces = [simulate_gps_trace(network, t, rng, noise_std=8.0) for t in trips[:3]]
        matched = match_traces(matcher, traces)
        assert 1 <= len(matched) <= 3
        for trajectory in matched:
            assert len(trajectory) >= 2
