"""Tests for the road-network substrate."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import NetworkError
from repro.network import (
    RoadNetwork,
    edge_graph_out_degrees,
    grid_network,
    poisson_out_degree_graph,
)


@pytest.fixture(scope="module")
def tiny_network():
    coordinates = {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (1.0, 1.0), 3: (0.0, 1.0)}
    edges = [(0, 1), (1, 2), (2, 3), (3, 0), (1, 0)]
    return RoadNetwork(coordinates, edges)


class TestRoadNetworkBasics:
    def test_counts(self, tiny_network):
        assert tiny_network.n_nodes == 4
        assert tiny_network.n_edges == 5

    def test_duplicate_edges_ignored(self):
        network = RoadNetwork({0: (0, 0), 1: (1, 0)}, [(0, 1), (0, 1)])
        assert network.n_edges == 1

    def test_unknown_node_in_edge_rejected(self):
        with pytest.raises(NetworkError):
            RoadNetwork({0: (0, 0)}, [(0, 5)])

    def test_segment_lengths_euclidean(self, tiny_network):
        assert tiny_network.segment((0, 1)).length == pytest.approx(1.0)
        assert tiny_network.euclidean(0, 2) == pytest.approx(math.sqrt(2))

    def test_out_and_in_edges(self, tiny_network):
        assert set(tiny_network.out_edges(1)) == {(1, 2), (1, 0)}
        assert set(tiny_network.in_edges(0)) == {(3, 0), (1, 0)}

    def test_successor_edges(self, tiny_network):
        assert set(tiny_network.successor_edges((0, 1))) == {(1, 2), (1, 0)}

    def test_unknown_lookups_raise(self, tiny_network):
        with pytest.raises(NetworkError):
            tiny_network.segment((0, 3))
        with pytest.raises(NetworkError):
            tiny_network.out_edges(99)
        with pytest.raises(NetworkError):
            tiny_network.coordinate(99)

    def test_midpoint(self, tiny_network):
        assert tiny_network.edge_midpoint((0, 1)) == (0.5, 0.0)

    def test_turn_angle_straight_vs_turn(self):
        network = grid_network(3, 3)
        straight = network.turn_angle(((0, 0), (0, 1)), ((0, 1), (0, 2)))
        turn = network.turn_angle(((0, 0), (0, 1)), ((0, 1), (1, 1)))
        assert straight == pytest.approx(0.0, abs=1e-9)
        assert turn == pytest.approx(math.pi / 2, abs=1e-9)

    def test_validate_trajectory(self, tiny_network):
        assert tiny_network.validate_trajectory([(0, 1), (1, 2), (2, 3)])
        assert not tiny_network.validate_trajectory([(0, 1), (2, 3)])


class TestRouting:
    def test_shortest_path_nodes(self, tiny_network):
        assert tiny_network.shortest_path_nodes(0, 2) == [0, 1, 2]
        assert tiny_network.shortest_path_nodes(0, 0) == [0]

    def test_shortest_path_edges(self, tiny_network):
        assert tiny_network.shortest_path_edges(0, 3) == [(0, 1), (1, 2), (2, 3)]

    def test_unreachable_raises(self):
        network = RoadNetwork({0: (0, 0), 1: (1, 0)}, [(0, 1)])
        with pytest.raises(NetworkError):
            network.shortest_path_nodes(1, 0)

    def test_shortest_path_between_edges(self, tiny_network):
        filler = tiny_network.shortest_path_between_edges((0, 1), (2, 3))
        assert filler == [(1, 2)]
        assert tiny_network.shortest_path_between_edges((0, 1), (1, 2)) == []

    def test_shortest_path_length(self, tiny_network):
        assert tiny_network.shortest_path_length(0, 2) == pytest.approx(2.0)

    def test_grid_paths_are_manhattan(self):
        network = grid_network(5, 5, spacing=1.0)
        length = network.shortest_path_length((0, 0), (3, 4))
        assert length == pytest.approx(7.0)

    def test_all_pairs_shortest_lengths(self, tiny_network):
        table = tiny_network.all_pairs_shortest_lengths()
        assert table[0][2] == pytest.approx(2.0)
        assert table[0][0] == 0.0
        assert 0 not in table[2] or table[2][0] == pytest.approx(2.0)


class TestGenerators:
    def test_grid_dimensions(self):
        network = grid_network(4, 6)
        assert network.n_nodes == 24
        # horizontal: 4*5 pairs, vertical: 3*6 pairs, both directions
        assert network.n_edges == 2 * (4 * 5 + 3 * 6)

    def test_grid_one_way(self):
        one_way = grid_network(3, 3, bidirectional=False)
        two_way = grid_network(3, 3, bidirectional=True)
        assert two_way.n_edges == 2 * one_way.n_edges

    def test_grid_too_small_rejected(self):
        with pytest.raises(NetworkError):
            grid_network(1, 5)

    def test_grid_edge_graph_degree_is_road_like(self):
        degrees = edge_graph_out_degrees(grid_network(8, 8))
        assert 2.0 <= float(np.mean(degrees)) <= 4.0

    def test_poisson_graph_degree(self):
        rng = np.random.default_rng(0)
        network = poisson_out_degree_graph(300, 4.0, rng)
        degrees = [len(network.out_edges(node)) for node in network.nodes()]
        assert 3.0 <= float(np.mean(degrees)) <= 5.0
        assert min(degrees) >= 1  # no dead ends by default

    def test_poisson_graph_no_self_loops(self):
        rng = np.random.default_rng(1)
        network = poisson_out_degree_graph(100, 3.0, rng)
        for tail, head in network.edges():
            assert tail != head

    def test_poisson_graph_parameter_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(NetworkError):
            poisson_out_degree_graph(1, 4.0, rng)
        with pytest.raises(NetworkError):
            poisson_out_degree_graph(10, 0.0, rng)

    def test_poisson_graph_deterministic_given_seed(self):
        first = poisson_out_degree_graph(50, 3.0, np.random.default_rng(9))
        second = poisson_out_degree_graph(50, 3.0, np.random.default_rng(9))
        assert sorted(first.edges()) == sorted(second.edges())
