"""Tests for the RRR compressed bit vector."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConstructionError, QueryError
from repro.succinct import BitVector, RRRBitVector, decode_block, encode_block, offset_bits


class TestBlockCoding:
    @pytest.mark.parametrize("b", [3, 7, 15, 31, 63])
    def test_roundtrip_random_blocks(self, b):
        rng = np.random.default_rng(b)
        for _ in range(30):
            bits = [int(x) for x in rng.integers(0, 2, b)]
            cls, offset = encode_block(bits, b)
            assert cls == sum(bits)
            assert decode_block(cls, offset, b) == bits

    @pytest.mark.parametrize("b", [1, 5, 15, 63])
    def test_roundtrip_extreme_blocks(self, b):
        for bits in ([0] * b, [1] * b, [1] + [0] * (b - 1), [0] * (b - 1) + [1]):
            cls, offset = encode_block(bits, b)
            assert decode_block(cls, offset, b) == list(bits)

    def test_offset_is_dense(self):
        """All blocks of the same class get distinct offsets in [0, C(b, c))."""
        b = 6
        seen: dict[int, set[int]] = {}
        for value in range(2**b):
            bits = [(value >> (b - 1 - k)) & 1 for k in range(b)]
            cls, offset = encode_block(bits, b)
            assert offset < 2 ** offset_bits(b, cls) or offset_bits(b, cls) == 0
            seen.setdefault(cls, set())
            assert offset not in seen[cls]
            seen[cls].add(offset)

    def test_wrong_block_length_rejected(self):
        with pytest.raises(ConstructionError):
            encode_block([1, 0], 3)

    def test_offset_bits_monotone_in_class_balance(self):
        assert offset_bits(15, 0) == 0
        assert offset_bits(15, 7) >= offset_bits(15, 1)


class TestRRRQueries:
    @pytest.mark.parametrize("b", [15, 31, 63])
    @pytest.mark.parametrize("density", [0.05, 0.5, 0.95])
    def test_rank_access_match_plain(self, b, density):
        rng = np.random.default_rng(int(b * 100 * density))
        bits = (rng.random(700) < density).astype(int)
        plain = BitVector(bits)
        rrr = RRRBitVector(bits, block_size=b)
        for i in range(0, 701, 13):
            assert rrr.rank1(i) == plain.rank1(i)
            assert rrr.rank0(i) == plain.rank0(i)
        for i in range(0, 700, 17):
            assert rrr.access(i) == plain.access(i)

    def test_to_list_roundtrip(self):
        bits = [1, 0, 0, 1, 1, 1, 0, 1, 0, 0, 0, 1]
        assert RRRBitVector(bits, block_size=5).to_list() == bits

    def test_select_matches_plain(self):
        rng = np.random.default_rng(3)
        bits = (rng.random(300) < 0.3).astype(int)
        plain = BitVector(bits)
        rrr = RRRBitVector(bits, block_size=15)
        for k in range(1, plain.n_ones + 1, 3):
            assert rrr.select1(k) == plain.select1(k)
        for k in range(1, plain.n_zeros + 1, 7):
            assert rrr.select0(k) == plain.select0(k)

    def test_counts(self):
        bits = [1, 0, 1, 1, 0, 0, 0, 1]
        rrr = RRRBitVector(bits, block_size=3)
        assert rrr.n_ones == 4
        assert rrr.n_zeros == 4

    def test_empty_vector(self):
        rrr = RRRBitVector([], block_size=15)
        assert len(rrr) == 0
        assert rrr.rank1(0) == 0

    def test_rank_bounds(self):
        rrr = RRRBitVector([1, 0, 1], block_size=15)
        with pytest.raises(QueryError):
            rrr.rank1(4)
        with pytest.raises(QueryError):
            rrr.access(3)

    def test_invalid_parameters(self):
        with pytest.raises(ConstructionError):
            RRRBitVector([1, 0], block_size=0)
        with pytest.raises(ConstructionError):
            RRRBitVector([1, 0], block_size=64)
        with pytest.raises(ConstructionError):
            RRRBitVector([1, 0], block_size=15, sample_rate=0)


class TestRRRCompression:
    def test_sparse_vector_compresses(self):
        """A highly biased bit vector must take far fewer bits than its length."""
        bits = np.zeros(10_000, dtype=int)
        bits[::200] = 1
        rrr = RRRBitVector(bits, block_size=63)
        assert rrr.size_in_bits() < 0.45 * len(bits)

    def test_dense_random_vector_does_not_compress(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 10_000)
        rrr = RRRBitVector(bits, block_size=63)
        assert rrr.size_in_bits() > 0.9 * len(bits)

    def test_larger_block_size_compresses_better_on_biased_data(self):
        bits = np.zeros(20_000, dtype=int)
        bits[::50] = 1
        small_b = RRRBitVector(bits, block_size=15).size_in_bits()
        large_b = RRRBitVector(bits, block_size=63).size_in_bits()
        assert large_b < small_b

    def test_size_counts_all_components(self):
        rrr = RRRBitVector([1, 0] * 100, block_size=15)
        assert rrr.size_in_bits() > 0


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=300),
    st.sampled_from([7, 15, 31, 63]),
)
def test_rrr_equals_plain_on_arbitrary_inputs(bits, block_size):
    """RRR behaves exactly like the plain bit vector for rank and access."""
    plain = BitVector(bits)
    rrr = RRRBitVector(bits, block_size=block_size)
    n = len(bits)
    for i in {0, 1, n // 3, n // 2, n - 1, n}:
        if 0 <= i <= n:
            assert rrr.rank1(i) == plain.rank1(i)
    assert rrr.to_list() == plain.to_list()
