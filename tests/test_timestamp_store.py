"""Tests for the :class:`repro.temporal.TimestampStore` subsystem."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConstructionError, DatasetError, QueryError
from repro.queries import DeltaTimestampCodec
from repro.temporal import TimestampStore

INTEGRAL = [10.0, 12.0, 15.0, 15.0, 21.0]
FRACTIONAL = [0.25, 1.4, 3.33, 9.99]


@pytest.fixture()
def mixed_store():
    """Integral (delta-encoded), fractional (raw fallback), gap, single sample."""
    return TimestampStore([INTEGRAL, FRACTIONAL, None, [42.0]])


class TestLosslessRoundTrip:
    def test_decodes_exactly(self, mixed_store):
        assert mixed_store.get(0) == INTEGRAL
        assert mixed_store.get(1) == FRACTIONAL
        assert mixed_store.get(2) is None
        assert mixed_store.get(3) == [42.0]

    def test_as_lists_preserves_gaps_and_order(self, mixed_store):
        assert mixed_store.as_lists() == [INTEGRAL, FRACTIONAL, None, [42.0]]
        assert list(mixed_store) == [INTEGRAL, FRACTIONAL, None, [42.0]]

    def test_save_load_is_lossless(self, mixed_store, tmp_path):
        path = mixed_store.save(tmp_path / "timestamps.npz")
        reloaded = TimestampStore.load(path)
        assert reloaded.as_lists() == mixed_store.as_lists()
        assert reloaded.size_in_bits() == mixed_store.size_in_bits()
        assert reloaded.codec.resolution == mixed_store.codec.resolution

    def test_empty_store_round_trips(self, tmp_path):
        store = TimestampStore()
        reloaded = TimestampStore.load(store.save(tmp_path / "empty.npz"))
        assert len(reloaded) == 0
        assert not reloaded.any_timestamped

    def test_all_gaps_round_trip(self, tmp_path):
        store = TimestampStore([None, None, None])
        reloaded = TimestampStore.load(store.save(tmp_path / "gaps.npz"))
        assert reloaded.as_lists() == [None, None, None]
        assert not reloaded.any_timestamped

    def test_single_sample_round_trips(self, tmp_path):
        store = TimestampStore([[3.5], [7.0]])
        reloaded = TimestampStore.load(store.save(tmp_path / "one.npz"))
        assert reloaded.as_lists() == [[3.5], [7.0]]

    def test_random_float_fleet_round_trips(self, tmp_path):
        rng = np.random.default_rng(11)
        fleet = [
            list(rng.uniform(0, 100) + np.cumsum(rng.uniform(1, 30, rng.integers(1, 20))))
            for _ in range(25)
        ]
        fleet[5] = None
        fleet[17] = None
        store = TimestampStore(fleet)
        reloaded = TimestampStore.load(store.save(tmp_path / "fleet.npz"))
        assert reloaded.as_lists() == store.as_lists() == fleet


class TestPointLookups:
    """Sampled-prefix-sum point lookups decode exactly like full decodes."""

    def test_matches_full_decode_on_mixed_store(self, mixed_store):
        for trajectory_id, times in enumerate(mixed_store.as_lists()):
            if times is None:
                assert mixed_store.timestamp(trajectory_id, 0) is None
                continue
            for edge_index, expected in enumerate(times):
                looked_up = mixed_store.timestamp(trajectory_id, edge_index)
                assert looked_up == expected

    def test_matches_full_decode_across_anchor_boundaries(self):
        # Long integral entries exercise several prefix-sum anchors; the
        # point lookup must reproduce the sequential cumsum bit-for-bit.
        rng = np.random.default_rng(11)
        fleet = []
        for _ in range(8):
            n = int(rng.integers(60, 400))
            start = float(rng.integers(0, 86_400))
            dwell = rng.integers(1, 120, size=n).astype(np.float64)
            fleet.append(list(start + np.cumsum(dwell) - dwell[0]))
        store = TimestampStore(fleet)
        for trajectory_id, times in enumerate(fleet):
            decoded = store.get(trajectory_id)
            for edge_index in range(len(times)):
                assert store.timestamp(trajectory_id, edge_index) == decoded[edge_index]

    def test_matches_full_decode_on_raw_fallback(self):
        rng = np.random.default_rng(13)
        times = list(np.cumsum(rng.uniform(0.1, 7.3, size=150)))
        store = TimestampStore([times])
        decoded = store.get(0)
        for edge_index in range(len(times)):
            assert store.timestamp(0, edge_index) == decoded[edge_index]

    def test_gap_returns_none(self, mixed_store):
        assert mixed_store.timestamp(2, 0) is None
        assert mixed_store.timestamp(2, 99) is None

    def test_out_of_range_edge_rejected(self, mixed_store):
        with pytest.raises(QueryError, match="edge index"):
            mixed_store.timestamp(0, len(INTEGRAL))
        with pytest.raises(QueryError, match="edge index"):
            mixed_store.timestamp(0, -1)

    def test_out_of_range_trajectory_rejected(self, mixed_store):
        with pytest.raises(QueryError, match="out of range"):
            mixed_store.timestamp(99, 0)

    def test_survives_save_load(self, mixed_store, tmp_path):
        archive = mixed_store.save(tmp_path / "timestamps.npz")
        reloaded = TimestampStore.load(archive)
        assert reloaded.timestamp(0, 2) == INTEGRAL[2]
        assert reloaded.timestamp(1, 3) == FRACTIONAL[3]


class TestEncodingChoice:
    def test_integral_data_uses_delta_encoding(self):
        store = TimestampStore([INTEGRAL])
        # 64-bit start + 4 deltas at 3 bits (max delta 6) + width byte + presence
        assert store.size_in_bits() == 64 + 4 * 3 + 8 + 1

    def test_fractional_data_falls_back_to_raw(self):
        store = TimestampStore([FRACTIONAL])
        assert store.size_in_bits() == 4 * 64 + 8 + 1

    def test_delta_encoding_beats_raw_floats(self):
        integral = TimestampStore([INTEGRAL])
        assert integral.size_in_bits() < len(INTEGRAL) * 64

    def test_coarser_codec_respected(self, tmp_path):
        codec = DeltaTimestampCodec(resolution=5.0)
        store = TimestampStore([[0.0, 5.0, 15.0]], codec=codec)
        reloaded = TimestampStore.load(store.save(tmp_path / "coarse.npz"))
        assert reloaded.get(0) == [0.0, 5.0, 15.0]
        assert reloaded.codec.resolution == 5.0


class TestGrowth:
    def test_append_and_extend(self):
        store = TimestampStore()
        store.append([1.0, 2.0])
        store.extend([None, [4.0]])
        assert len(store) == 3
        assert store.n_timestamped == 2
        assert store.has_timestamps(0) and not store.has_timestamps(1)

    def test_flags(self):
        assert not TimestampStore().fully_timestamped
        assert TimestampStore([[1.0]]).fully_timestamped
        assert not TimestampStore([[1.0], None]).fully_timestamped
        assert TimestampStore([[1.0], None]).any_timestamped


class TestValidation:
    def test_decreasing_rejected(self):
        with pytest.raises(ConstructionError, match="non-decreasing"):
            TimestampStore([[5.0, 1.0]])

    def test_empty_sequence_rejected(self):
        with pytest.raises(ConstructionError):
            TimestampStore([[]])

    def test_out_of_range_id_rejected(self, mixed_store):
        with pytest.raises(QueryError, match="out of range"):
            mixed_store.get(99)
        with pytest.raises(QueryError, match="out of range"):
            mixed_store.get(-1)

    def test_missing_archive_rejected(self, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            TimestampStore.load(tmp_path / "nope.npz")

    def test_unsupported_version_rejected(self, mixed_store, tmp_path):
        path = mixed_store.save(tmp_path / "store.npz")
        with np.load(path) as archive:
            arrays = dict(archive)
        arrays["format_version"] = np.asarray([999], dtype=np.int64)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ConstructionError, match="version"):
            TimestampStore.load(path)

    def test_zero_length_entry_rejected(self, tmp_path):
        store = TimestampStore([INTEGRAL, [5.0]])
        path = store.save(tmp_path / "store.npz")
        with np.load(path) as archive:
            arrays = dict(archive)
        arrays["lengths"] = arrays["lengths"].copy()
        arrays["lengths"][1] = 0
        np.savez_compressed(path, **arrays)
        with pytest.raises(ConstructionError, match="corrupt"):
            TimestampStore.load(path)

    def test_decreasing_raw_archive_rejected(self, tmp_path):
        store = TimestampStore([FRACTIONAL])
        path = store.save(tmp_path / "store.npz")
        with np.load(path) as archive:
            arrays = dict(archive)
        arrays["raw_values"] = arrays["raw_values"][::-1].copy()
        np.savez_compressed(path, **arrays)
        with pytest.raises(ConstructionError, match="decreasing"):
            TimestampStore.load(path)

    def test_negative_delta_archive_rejected(self, tmp_path):
        store = TimestampStore([INTEGRAL])
        path = store.save(tmp_path / "store.npz")
        with np.load(path) as archive:
            arrays = dict(archive)
        arrays["deltas"] = -np.abs(arrays["deltas"]) - 1
        np.savez_compressed(path, **arrays)
        with pytest.raises(ConstructionError, match="negative"):
            TimestampStore.load(path)

    @pytest.mark.parametrize("payload", ["deltas", "raw_values"])
    def test_truncated_payload_rejected(self, mixed_store, tmp_path, payload):
        # An archive whose entry lengths disagree with the stored payload must
        # fail loudly instead of silently decoding short timestamp lists.
        path = mixed_store.save(tmp_path / "store.npz")
        with np.load(path) as archive:
            arrays = dict(archive)
        arrays[payload] = arrays[payload][:-1]
        np.savez_compressed(path, **arrays)
        with pytest.raises(ConstructionError, match="corrupt"):
            TimestampStore.load(path)
