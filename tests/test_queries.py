"""Tests for the temporal index and strict path queries."""

from __future__ import annotations

import pytest

from repro.exceptions import ConstructionError, QueryError
from repro.queries import StrictPathIndex, TemporalIndex
from repro.trajectories import Trajectory, TrajectoryDataset


@pytest.fixture(scope="module")
def strict_index(medium_dataset):
    return StrictPathIndex(medium_dataset, block_size=31, sa_sample_rate=8)


def brute_force_matches(dataset, path, t_start=None, t_end=None):
    """Reference implementation: scan every trajectory for the sub-path."""
    found = []
    m = len(path)
    for trajectory in dataset.trajectories:
        edges = trajectory.edges
        for start in range(len(edges) - m + 1):
            if edges[start : start + m] != list(path):
                continue
            if t_start is not None:
                begin = trajectory.timestamps[start]
                finish = trajectory.timestamps[start + m - 1]
                if begin < t_start or finish > t_end:
                    continue
            found.append((trajectory.trajectory_id, start))
    return sorted(found)


class TestTemporalIndex:
    def test_requires_timestamps(self):
        dataset = [Trajectory(edges=[(0, 1), (1, 2)])]
        with pytest.raises(ConstructionError):
            TemporalIndex.from_trajectories(dataset)

    def test_rejects_decreasing_timestamps(self):
        bad = [Trajectory(edges=[(0, 1), (1, 2)], timestamps=[5.0, 1.0])]
        with pytest.raises(ConstructionError):
            TemporalIndex.from_trajectories(bad)

    def test_timestamp_reconstruction(self, medium_dataset):
        index = TemporalIndex.from_trajectories(medium_dataset.trajectories)
        for trajectory in medium_dataset.trajectories[:5]:
            for edge_index in range(len(trajectory)):
                expected = trajectory.timestamps[edge_index]
                got = index.timestamp(trajectory.trajectory_id, edge_index)
                assert got == pytest.approx(expected)

    def test_timestamp_bounds(self, medium_dataset):
        index = TemporalIndex.from_trajectories(medium_dataset.trajectories)
        with pytest.raises(QueryError):
            index.timestamp(10**6, 0)
        with pytest.raises(QueryError):
            index.timestamp(0, 10**6)

    def test_active_during(self, medium_dataset):
        index = TemporalIndex.from_trajectories(medium_dataset.trajectories)
        t0 = medium_dataset.trajectories[3].timestamps[0]
        t1 = medium_dataset.trajectories[3].timestamps[-1]
        active = index.active_during(t0, t1)
        assert 3 in active
        with pytest.raises(QueryError):
            index.active_during(10.0, 5.0)

    def test_active_during_everything(self, medium_dataset):
        index = TemporalIndex.from_trajectories(medium_dataset.trajectories)
        assert len(index.active_during(-1e18, 1e18)) == len(medium_dataset)

    def test_size_in_bits(self, medium_dataset):
        index = TemporalIndex.from_trajectories(medium_dataset.trajectories)
        assert index.size_in_bits() > 0
        assert index.n_trajectories == len(medium_dataset)


class TestStrictPathSpatial:
    def test_matches_equal_brute_force(self, strict_index, medium_dataset):
        for trajectory in medium_dataset.trajectories[::5]:
            for length in (2, 3, 4):
                if len(trajectory) < length:
                    continue
                path = trajectory.edges[1 : 1 + length]
                expected = brute_force_matches(medium_dataset, path)
                got = sorted(
                    (match.trajectory_id, match.start_edge_index)
                    for match in strict_index.query(path)
                )
                assert got == expected

    def test_count_path(self, strict_index, medium_dataset):
        trajectory = medium_dataset.trajectories[0]
        path = trajectory.edges[:2]
        assert strict_index.count_path(path) == len(brute_force_matches(medium_dataset, path))

    def test_missing_path_returns_empty(self, strict_index, medium_dataset):
        network = medium_dataset.network
        # A valid edge pair that is extremely unlikely to be travelled backwards
        absent = [((0, 0), (0, 1)), ((0, 1), (0, 0))]
        result = strict_index.query(absent)
        assert result == [] or all(isinstance(m.trajectory_id, int) for m in result)

    def test_empty_path_rejected(self, strict_index):
        with pytest.raises(QueryError):
            strict_index.query([])

    def test_matching_trajectory_ids_distinct(self, strict_index, medium_dataset):
        trajectory = medium_dataset.trajectories[2]
        path = trajectory.edges[:2]
        ids = strict_index.matching_trajectory_ids(path)
        assert ids == sorted(set(ids))
        assert trajectory.trajectory_id in ids


class TestStrictPathTemporal:
    def test_temporal_filter_matches_brute_force(self, strict_index, medium_dataset):
        trajectory = medium_dataset.trajectories[4]
        path = trajectory.edges[2:5]
        t_start = trajectory.timestamps[2]
        t_end = trajectory.timestamps[4]
        expected = brute_force_matches(medium_dataset, path, t_start, t_end)
        got = sorted(
            (match.trajectory_id, match.start_edge_index)
            for match in strict_index.query(path, t_start, t_end)
        )
        assert got == expected
        assert (trajectory.trajectory_id, 2) in got

    def test_window_outside_excludes_everything(self, strict_index, medium_dataset):
        trajectory = medium_dataset.trajectories[1]
        path = trajectory.edges[:3]
        matches = strict_index.query(path, -1e9, -1e8)
        assert matches == []

    def test_half_open_interval_rejected(self, strict_index, medium_dataset):
        path = medium_dataset.trajectories[0].edges[:2]
        with pytest.raises(QueryError):
            strict_index.query(path, 0.0, None)

    def test_dataset_without_timestamps(self, medium_dataset):
        bare = TrajectoryDataset(
            name="bare",
            trajectories=[Trajectory(edges=list(t.edges)) for t in medium_dataset.trajectories[:10]],
            network=medium_dataset.network,
        )
        index = StrictPathIndex(bare, block_size=31)
        path = bare.trajectories[0].edges[:2]
        assert index.count_path(path) >= 1
        with pytest.raises(QueryError):
            index.query(path, 0.0, 1.0)


class TestStrictPathSizes:
    def test_size_includes_temporal(self, strict_index):
        assert strict_index.size_in_bits() > strict_index.cinct.size_in_bits()

    def test_temporal_accessor(self, strict_index):
        assert strict_index.temporal is not None
