"""Tests for the Section-V analytical size/time models."""

from __future__ import annotations

import pytest

from repro.analysis import (
    empirical_entropy_h0,
    hwt_overhead_bits,
    hwt_total_bits,
    measured_vs_predicted_ratio,
    predicted_cinct_bits,
    predicted_icb_huff_bits,
    predicted_rank_operations,
    predicted_search_rank_bound,
    predicted_size_reduction,
    rrr_overhead_per_bit,
)
from repro.fmindex import ICBHuffmanFMIndex


class TestRRROverhead:
    def test_paper_value_for_b63(self):
        # The paper quotes h(63) = lg(64)/63 ~ 0.095 bits per bit.
        assert rrr_overhead_per_bit(63) == pytest.approx(0.0952, abs=1e-3)

    def test_decreases_with_block_size(self):
        assert rrr_overhead_per_bit(15) > rrr_overhead_per_bit(31) > rrr_overhead_per_bit(63)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            rrr_overhead_per_bit(0)


class TestSizeModels:
    def test_overhead_scales_with_entropy(self):
        # Eq. 12: the overhead is proportional to (1 + H0), so the gap between
        # a labelled (H0 ~ 0.7) and a raw (H0 ~ 13) BWT is about 8x.
        low = hwt_overhead_bits(10_000, 0.7, 63)
        high = hwt_overhead_bits(10_000, 13.0, 63)
        assert high > 5 * low
        assert high / low == pytest.approx(14.0 / 1.7, rel=1e-6)

    def test_total_is_payload_plus_overhead(self):
        total = hwt_total_bits(1000, 2.0, 31)
        assert total == pytest.approx(1000 * 3.0 + hwt_overhead_bits(1000, 2.0, 31))

    def test_cinct_predicted_smaller_than_icb_when_labelling_helps(self):
        ratio = predicted_size_reduction(
            length=100_000, h0_raw=13.0, h0_labelled=1.5, block_size=63, et_graph_bits=50_000
        )
        assert ratio < 0.5

    def test_reduction_close_to_one_without_entropy_gap(self):
        ratio = predicted_size_reduction(
            length=100_000, h0_raw=3.0, h0_labelled=3.0, block_size=63
        )
        assert ratio == pytest.approx(1.0)

    def test_measured_vs_predicted_ratio_guard(self):
        with pytest.raises(ValueError):
            measured_vs_predicted_ratio(10.0, 0.0)


class TestModelAgainstMeasurements:
    def test_cinct_size_within_factor_of_model(self, medium_bwt, medium_cinct):
        h0_labelled = empirical_entropy_h0(medium_cinct.labelled_bwt)
        predicted = predicted_cinct_bits(
            medium_bwt.length,
            h0_labelled,
            medium_cinct.block_size,
            et_graph_bits=medium_cinct.et_graph.size_in_bits(text_length=medium_bwt.length),
        )
        measured = medium_cinct.size_in_bits()
        # The model ignores lower-order terms (pointers, samples), so allow a
        # generous but bounded factor; the point is the order of magnitude.
        assert 0.3 < measured_vs_predicted_ratio(measured, predicted) < 4.0

    def test_icb_size_within_factor_of_model(self, medium_bwt):
        index = ICBHuffmanFMIndex(medium_bwt, block_size=31)
        h0 = empirical_entropy_h0(medium_bwt.bwt)
        predicted = predicted_icb_huff_bits(medium_bwt.length, h0, 31)
        # On the small test fixture the lower-order terms the model ignores
        # (per-node pointers, rank samples, C[]) are a large fraction of the
        # total, so only the order of magnitude is checked here.
        assert 0.3 < measured_vs_predicted_ratio(index.size_in_bits(), predicted) < 10.0

    def test_model_predicts_cinct_smaller_than_icb(self, medium_bwt, medium_cinct):
        h0_raw = empirical_entropy_h0(medium_bwt.bwt)
        h0_labelled = empirical_entropy_h0(medium_cinct.labelled_bwt)
        assert h0_labelled < h0_raw
        icb = ICBHuffmanFMIndex(medium_bwt, block_size=31)
        # Compare the wavelet-tree payloads (the "CiNCT (w/o ET-graph)" series
        # of the paper): on the tiny test fixture the ET-graph is a sizeable
        # constant, but the core claim — the labelled HWT is smaller than the
        # raw one — must hold in both the model and the measurement.
        ratio_predicted = predicted_size_reduction(
            medium_bwt.length, h0_raw, h0_labelled, 31, et_graph_bits=0
        )
        ratio_measured = medium_cinct.size_in_bits(include_et_graph=False) / icb.size_in_bits()
        assert ratio_predicted < 1.0
        assert ratio_measured < 1.0


class TestRankOperationModel:
    def test_labelled_bwt_needs_fewer_rank_ops(self, medium_bwt, medium_cinct):
        raw_ops = predicted_rank_operations(medium_bwt.bwt)
        labelled_ops = predicted_rank_operations(medium_cinct.labelled_bwt)
        assert labelled_ops < raw_ops

    def test_rank_ops_lower_bound(self):
        assert predicted_rank_operations([1, 1, 1, 1]) == pytest.approx(1.0)

    def test_search_bound_scales_linearly_in_pattern_length(self):
        assert predicted_search_rank_bound(21, 4, 63) == pytest.approx(
            2 * predicted_search_rank_bound(11, 4, 63), rel=0.05
        )

    def test_search_bound_independent_of_sigma(self):
        # Theorem 5: the bound involves only |P|, delta and b.
        bound = predicted_search_rank_bound(20, 4, 63)
        assert bound == 2 * 19 * 6 * 63

    def test_search_bound_rejects_empty_pattern(self):
        with pytest.raises(ValueError):
            predicted_search_rank_bound(0, 4, 63)
