"""Setup shim so that legacy (non-PEP-517) editable installs work offline."""
from setuptools import setup

setup()
