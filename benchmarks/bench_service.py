"""Serving-tier benchmark: what micro-batch coalescing buys under load.

Two measurements pin the value of the serving tier (:mod:`repro.service`):

* **Coalescer throughput** — the same duplicate-heavy burst workload
  (concurrent asyncio clients, every request outstanding at once) pushed
  through a coalescing front-end (micro-batch windows merging simultaneous
  requests into single ``run_many`` calls, where the engine's optimize
  stage dedupes the repeats) and through a control configuration with
  coalescing disabled (``max_batch_size=1``: every request is its own
  engine batch).  The result cache is off in both, so the ratio isolates
  what batching itself buys.  At full scale the coalesced configuration
  must clear ``>= 1.5x`` the control's throughput — the acceptance target
  of the serving tier.
* **HTTP latency** — end-to-end p50/p95/p99 per-request latency and
  throughput through the real HTTP surface at several client concurrency
  levels, with and without coalescing.  Recorded for the baseline file, not
  asserted: wall-clock HTTP numbers are environment noise on shared CI.
* **SLO workloads** — declarative :class:`repro.bench.WorkloadConfig` specs
  (a count/contains query mix under Poisson and uniform arrival processes)
  replayed as *paced* open-loop runs against the coalescer: each request
  fires at its spec'd arrival offset whether or not earlier answers came
  back.  Per spec the run records the SLO quantities — p50/p95/p99 *and*
  inter-request jitter (:func:`repro.bench.latency_summary`) — again
  recorded, not asserted.

Results land in ``benchmarks/BENCH_service.json`` through
:func:`repro.bench.write_bench_baseline`.  Dataset and workload sizes follow
``REPRO_BENCH_SCALE`` (CI smokes at 0.05, which only checks plumbing).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from common import BENCH_SCALE, get_bundle
from repro.bench import (
    WorkloadConfig,
    format_table,
    latency_summary,
    write_bench_baseline,
)
from repro.engine import (
    ContainsQuery,
    CountQuery,
    EngineConfig,
    build_engine,
    sample_paths,
)
from repro.service import MicroBatchCoalescer, ServiceConfig, serve_in_background

DATASET = "Singapore"
PATTERN_LENGTH = 6
#: Distinct hot paths in the workload pool; small on purpose — a realistic
#: road network has hot paths, and dedupe inside a batch is where coalescing
#: earns its keep.
N_DISTINCT = 12
N_CLIENTS = 16
#: Queries each asyncio client submits back-to-back.
REQUESTS_PER_CLIENT = max(int(24 * BENCH_SCALE), 2)
#: HTTP sweep: concurrency levels and per-thread request counts.
HTTP_CONCURRENCY = (1, 4, 16)
HTTP_REQUESTS_PER_CLIENT = max(int(16 * BENCH_SCALE), 2)
THROUGHPUT_TARGET = 1.5

COALESCED = dict(batch_window_ms=5.0, max_batch_size=64)
#: The control: every request is its own engine batch (no coalescing).
UNCOALESCED = dict(batch_window_ms=0.0, max_batch_size=1)

#: SLO workload specs: the same 3:1 count/contains mix under the two arrival
#: processes, so the Poisson-vs-uniform delta isolates burst sensitivity.
SLO_RATE = max(400.0 * BENCH_SCALE, 20.0)
SLO_MIX = (("count", 3.0), ("contains", 1.0))
SLO_WORKLOADS = (
    WorkloadConfig(query_mix=SLO_MIX, arrival="poisson", rate=SLO_RATE, duration_s=1.0, seed=5),
    WorkloadConfig(query_mix=SLO_MIX, arrival="uniform", rate=SLO_RATE, duration_s=1.0, seed=5),
)

_QUERY_KINDS = {"count": CountQuery, "contains": ContainsQuery}


def build_service_engine():
    trajectories = [list(t) for t in get_bundle(DATASET).symbol_trajectories]
    # cache_size=0: with the result cache on, repeats are cache hits in both
    # configurations and the ratio would measure the cache, not coalescing.
    return build_engine(
        trajectories,
        EngineConfig(backend="cinct", cache_size=0),
    ), trajectories


def duplicate_heavy_queries(trajectories, n_requests: int, seed: int = 23):
    paths = sample_paths(trajectories, PATTERN_LENGTH, N_DISTINCT, seed=seed)
    rng = np.random.default_rng(seed)
    return [
        CountQuery(paths[int(rng.integers(len(paths)))]) for _ in range(n_requests)
    ]


def coalescer_throughput(
    engine, trajectories, service_kwargs: dict
) -> tuple[float, dict]:
    """Requests/second for N_CLIENTS concurrent clients, plus coalescer stats."""

    async def main() -> tuple[float, dict]:
        coalescer = MicroBatchCoalescer(
            engine, ServiceConfig(worker_threads=2, **service_kwargs)
        )

        async def client(queries) -> None:
            # Open-loop burst: all of this client's requests are outstanding
            # at once (independent callers behind a proxy, not one caller
            # waiting on each answer) — the load shape coalescing exists for.
            await asyncio.gather(*[coalescer.submit(query) for query in queries])

        workload = [
            duplicate_heavy_queries(
                trajectories, REQUESTS_PER_CLIENT, seed=100 + client_id
            )
            for client_id in range(N_CLIENTS)
        ]
        started = time.perf_counter()
        await asyncio.gather(*[client(queries) for queries in workload])
        elapsed = time.perf_counter() - started
        stats = coalescer.stats()
        await coalescer.aclose()
        return (N_CLIENTS * REQUESTS_PER_CLIENT) / elapsed, stats

    return asyncio.run(main())


def http_sweep(engine, trajectories, service_kwargs: dict) -> list[dict]:
    """p50/p95/p99 latency + throughput through the HTTP surface."""
    rows = []
    config = ServiceConfig(port=0, worker_threads=2, **service_kwargs)
    with serve_in_background(engine, config) as handle:
        documents = [
            {"type": "count", "path": list(query.path)}
            for query in duplicate_heavy_queries(
                trajectories, HTTP_REQUESTS_PER_CLIENT, seed=7
            )
        ]

        def client(_):
            latencies = []
            for document in documents:
                request = urllib.request.Request(
                    handle.url + "/query",
                    data=json.dumps(document).encode("utf-8"),
                )
                started = time.perf_counter()
                with urllib.request.urlopen(request, timeout=60.0) as response:
                    json.load(response)
                latencies.append(time.perf_counter() - started)
            return latencies

        for concurrency in HTTP_CONCURRENCY:
            with ThreadPoolExecutor(max_workers=concurrency) as pool:
                started = time.perf_counter()
                per_client = list(pool.map(client, range(concurrency)))
                elapsed = time.perf_counter() - started
            latencies = np.array([lat for client_l in per_client for lat in client_l])
            rows.append(
                {
                    "concurrency": concurrency,
                    "requests": int(latencies.size),
                    "p50_ms": float(np.percentile(latencies, 50) * 1e3),
                    "p95_ms": float(np.percentile(latencies, 95) * 1e3),
                    "p99_ms": float(np.percentile(latencies, 99) * 1e3),
                    "throughput_rps": float(latencies.size / elapsed),
                }
            )
    return rows


def slo_run(engine, trajectories, workload: WorkloadConfig) -> dict:
    """Replay one :class:`WorkloadConfig` spec as a paced open-loop run.

    Requests fire at the spec's arrival offsets regardless of earlier
    answers (asyncio sleeps until each offset, then submits), so queueing
    under bursts shows up in the tail percentiles and jitter exactly as a
    live client would see it.
    """
    paths = sample_paths(trajectories, PATTERN_LENGTH, N_DISTINCT, seed=workload.seed)
    rng = np.random.default_rng(workload.seed)
    queries = [
        _QUERY_KINDS[kind](paths[int(rng.integers(len(paths)))])
        for kind in workload.sample_kinds()
    ]
    offsets = workload.arrival_offsets()

    async def main() -> dict:
        coalescer = MicroBatchCoalescer(
            engine, ServiceConfig(worker_threads=2, **COALESCED)
        )
        latencies = np.zeros(len(queries), dtype=np.float64)

        async def fire(index: int, offset: float, query) -> None:
            await asyncio.sleep(offset)
            started = time.perf_counter()
            await coalescer.submit(query)
            latencies[index] = time.perf_counter() - started

        started = time.perf_counter()
        await asyncio.gather(
            *[
                fire(index, float(offsets[index]), query)
                for index, query in enumerate(queries)
            ]
        )
        elapsed = time.perf_counter() - started
        await coalescer.aclose()
        summary = latency_summary(latencies)
        summary["throughput_rps"] = len(queries) / elapsed
        return summary

    return {**workload.describe(), **asyncio.run(main())}


def test_service(report) -> None:
    engine, trajectories = build_service_engine()

    # --- coalescer-level throughput --------------------------------------- #
    coalesced_rps, coalesced_stats = coalescer_throughput(
        engine, trajectories, COALESCED
    )
    control_rps, control_stats = coalescer_throughput(
        engine, trajectories, UNCOALESCED
    )
    ratio = coalesced_rps / control_rps
    assert coalesced_stats["mean_batch_size"] > control_stats["mean_batch_size"]
    assert control_stats["largest_batch"] == 1  # the control never coalesces

    # --- HTTP-level percentiles ------------------------------------------- #
    http_coalesced = http_sweep(engine, trajectories, COALESCED)
    http_control = http_sweep(engine, trajectories, UNCOALESCED)

    # --- declarative SLO workloads ----------------------------------------- #
    slo_rows = [slo_run(engine, trajectories, workload) for workload in SLO_WORKLOADS]
    slo_table = format_table(
        [
            {
                "arrival": row["arrival"],
                "rate (req/s)": round(row["rate"], 0),
                "requests": row["requests"],
                "p50 (ms)": round(row["p50_ms"], 2),
                "p95 (ms)": round(row["p95_ms"], 2),
                "p99 (ms)": round(row["p99_ms"], 2),
                "jitter (ms)": round(row["jitter_ms"], 2),
            }
            for row in slo_rows
        ],
        title=f"{DATASET} — SLO workloads (coalesced, open-loop)",
    )

    table_rows = []
    for label, rows in (("coalesced", http_coalesced), ("no coalescing", http_control)):
        for row in rows:
            table_rows.append(
                {
                    "configuration": label,
                    "clients": row["concurrency"],
                    "p50 (ms)": round(row["p50_ms"], 2),
                    "p95 (ms)": round(row["p95_ms"], 2),
                    "p99 (ms)": round(row["p99_ms"], 2),
                    "req/s": round(row["throughput_rps"], 1),
                }
            )
    table = format_table(table_rows, title=f"{DATASET} — HTTP serving latency")
    report.add(
        "Serving tier (micro-batch coalescing)",
        table
        + "\n"
        + slo_table
        + f"\ncoalescer throughput: {coalesced_rps:.0f} req/s coalesced vs "
        f"{control_rps:.0f} req/s control ({ratio:.2f}x, target >= "
        f"{THROUGHPUT_TARGET:g}x at full scale; mean batch "
        f"{coalesced_stats['mean_batch_size']:.1f})",
    )

    write_bench_baseline(
        "service",
        {
            "scale": BENCH_SCALE,
            "dataset": DATASET,
            "cpu_count": os.cpu_count() or 1,
            "n_clients": N_CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "n_distinct_paths": N_DISTINCT,
            "coalesced_rps": coalesced_rps,
            "control_rps": control_rps,
            "throughput_ratio": ratio,
            "coalesced_mean_batch": coalesced_stats["mean_batch_size"],
            "coalesced_batches": coalesced_stats["batches"],
            "control_batches": control_stats["batches"],
            "http_coalesced": http_coalesced,
            "http_control": http_control,
            "slo": slo_rows,
        },
        directory=Path(__file__).parent,
    )
    assert (Path(__file__).parent / "BENCH_service.json").exists()

    # Window timers and thread dispatch are fixed costs; only a full-scale
    # workload amortises them enough for the ratio target to be meaningful.
    if BENCH_SCALE >= 1.0:
        assert ratio >= THROUGHPUT_TARGET, (
            f"coalescing delivered only {ratio:.2f}x the control throughput "
            f"(target {THROUGHPUT_TARGET:g}x)"
        )
