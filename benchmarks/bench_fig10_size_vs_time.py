"""Fig. 10 — index size vs. suffix-range query time, per dataset and method.

For each of the five dataset analogues and each of the six index variants
(CiNCT, UFMI, ICB-WM, ICB-Huff, FM-GMR, FM-AP-HYB) this benchmark measures

* the index size in bits per symbol, and
* the mean suffix-range query latency over a sampled workload,

mirroring the scatter points of Fig. 10.  The RRR block-size sweep
(b in {15, 31, 63}) of the same figure is covered for CiNCT and ICB-Huff on
the Singapore-2 analogue, which is where the paper discusses it.

Shape assertions (not absolute numbers): CiNCT is the smallest compressed
index and is faster than both ICB variants on every dataset.
"""

from __future__ import annotations

import pytest

from common import FIG10_VARIANTS, get_index, get_patterns, paper_datasets
from repro.bench import ExperimentRecord, format_table, measure_search_time


def _record(dataset: str, variant: str, block_size: int = 63) -> ExperimentRecord:
    built = get_index(dataset, variant, block_size)
    timing = measure_search_time(built.index, get_patterns(dataset))
    return ExperimentRecord(
        dataset=dataset,
        method=variant,
        block_size=built.block_size,
        bits_per_symbol=built.bits_per_symbol(),
        search_time_us=timing.mean_microseconds,
    )


@pytest.mark.parametrize("dataset", paper_datasets())
@pytest.mark.parametrize("variant", FIG10_VARIANTS)
def test_fig10_point(benchmark, dataset, variant, report):
    """One scatter point of Fig. 10: (size, time) for a dataset/method pair."""
    built = get_index(dataset, variant, 63)
    patterns = get_patterns(dataset)

    benchmark.pedantic(
        lambda: [built.index.suffix_range(p) for p in patterns],
        rounds=3,
        iterations=1,
    )

    record = _record(dataset, variant)
    report.add(
        f"Fig. 10 point — {dataset} / {variant}",
        format_table([record.as_row()]),
    )


@pytest.mark.parametrize("dataset", paper_datasets())
def test_fig10_dataset_panel(benchmark, dataset, report):
    """One panel of Fig. 10: all methods on one dataset, with shape checks."""
    records = benchmark.pedantic(
        lambda: [_record(dataset, variant) for variant in FIG10_VARIANTS],
        rounds=1,
        iterations=1,
    )
    report.add(
        f"Fig. 10 panel — {dataset} (size vs. suffix-range time)",
        format_table([r.as_row() for r in records]),
    )

    by_method = {r.method: r for r in records}
    cinct = by_method["CiNCT"]
    # CiNCT answers suffix-range queries faster than both ICB variants and the
    # uncompressed wavelet-matrix index (the paper's headline speed result).
    assert cinct.search_time_us < by_method["ICB-Huff"].search_time_us
    assert cinct.search_time_us < by_method["ICB-WM"].search_time_us
    assert cinct.search_time_us < by_method["UFMI"].search_time_us
    # Size: on the physically connected datasets CiNCT is smaller than both
    # ICB-Huff and the uncompressed index.  On the gapped Singapore analogue
    # the ET-graph constant overhead does not amortise at reduced |T| (see
    # EXPERIMENTS.md), so only the entropy-level win (vs UFMI-scale sizes
    # without compression) is asserted there.
    if dataset != "Singapore":
        assert cinct.bits_per_symbol < by_method["ICB-Huff"].bits_per_symbol
        assert cinct.bits_per_symbol < by_method["UFMI"].bits_per_symbol
    else:
        assert cinct.bits_per_symbol < by_method["UFMI"].bits_per_symbol
        assert cinct.bits_per_symbol < by_method["FM-GMR"].bits_per_symbol


@pytest.mark.parametrize("block_size", [15, 31, 63])
@pytest.mark.parametrize("variant", ["CiNCT", "ICB-Huff"])
def test_fig10_block_size_sweep(benchmark, variant, block_size, report):
    """The b in {15, 31, 63} sweep of Fig. 10 (Singapore-2 analogue)."""
    dataset = "Singapore-2"
    built = get_index(dataset, variant, block_size)
    patterns = get_patterns(dataset)

    benchmark.pedantic(
        lambda: [built.index.suffix_range(p) for p in patterns],
        rounds=2,
        iterations=1,
    )
    record = _record(dataset, variant, block_size)
    report.add(
        f"Fig. 10 block-size sweep — {variant}, b={block_size}",
        format_table([record.as_row()]),
    )


def test_fig10_block_size_insensitivity(benchmark, report):
    """Section VI-B3: CiNCT is nearly parameter-free in b.

    The spread of CiNCT's size across b in {15, 31, 63} must be small compared
    to the spread of ICB-Huff across the same block sizes.
    """
    dataset = "Singapore-2"

    def spreads():
        result = {}
        for variant in ("CiNCT", "ICB-Huff"):
            sizes = [
                get_index(dataset, variant, b).bits_per_symbol() for b in (15, 31, 63)
            ]
            result[variant] = (max(sizes) - min(sizes)) / min(sizes)
        return result

    relative_spread = benchmark.pedantic(spreads, rounds=1, iterations=1)
    report.add(
        "Fig. 10 — relative size spread across b (CiNCT vs ICB-Huff)",
        format_table(
            [
                {"method": name, "relative size spread": round(value, 3)}
                for name, value in relative_spread.items()
            ]
        ),
    )
    assert relative_spread["CiNCT"] <= relative_spread["ICB-Huff"] + 0.05
