"""Fig. 11 — suffix-range query time as a function of the query length |P|.

The paper measures the Singapore dataset: all methods grow linearly in |P|,
and CiNCT has the slowest growth.  We reproduce the |P| series for CiNCT and
the two ICB baselines plus UFMI, and check linearity and ordering.
"""

from __future__ import annotations

import pytest

from common import get_bwt, get_index
from repro.bench import measure_search_time, format_table
from repro.fmindex import sample_patterns

import numpy as np

DATASET = "Singapore"
QUERY_LENGTHS = (2, 5, 8, 12)
METHODS = ("CiNCT", "UFMI", "ICB-Huff", "ICB-WM")


def _patterns_of_length(length: int):
    rng = np.random.default_rng(length)
    return sample_patterns(get_bwt(DATASET), length, 20, rng)


@pytest.mark.parametrize("length", QUERY_LENGTHS)
@pytest.mark.parametrize("method", METHODS)
def test_fig11_query_length_point(benchmark, method, length, report):
    built = get_index(DATASET, method, 63)
    patterns = _patterns_of_length(length)
    benchmark.pedantic(
        lambda: [built.index.suffix_range(p) for p in patterns],
        rounds=3,
        iterations=1,
    )
    timing = measure_search_time(built.index, patterns)
    report.add(
        f"Fig. 11 point — {method}, |P|={length}",
        format_table(
            [{"method": method, "|P|": length, "search (us)": round(timing.mean_microseconds, 1)}]
        ),
    )


def test_fig11_series_shape(benchmark, report):
    """Growth is roughly linear in |P| and CiNCT stays below the ICB variants."""

    def build_series():
        series: dict[str, list[tuple[int, float]]] = {}
        for method in METHODS:
            built = get_index(DATASET, method, 63)
            series[method] = [
                (length, measure_search_time(built.index, _patterns_of_length(length)).mean_microseconds)
                for length in QUERY_LENGTHS
            ]
        return series

    series = benchmark.pedantic(build_series, rounds=1, iterations=1)

    rows = []
    for method, points in series.items():
        row: dict[str, object] = {"method": method}
        for length, microseconds in points:
            row[f"|P|={length}"] = round(microseconds, 1)
        rows.append(row)
    report.add("Fig. 11 — search time vs query length (Singapore analogue)", format_table(rows))

    for method, points in series.items():
        # Longer queries must not be cheaper (monotone growth, as in the figure).
        times = [microseconds for _, microseconds in points]
        assert times[-1] >= times[0], f"{method}: time should grow with |P|"
    # CiNCT is the fastest of the compressed indexes at the longest query length.
    longest = {method: points[-1][1] for method, points in series.items()}
    assert longest["CiNCT"] < longest["ICB-Huff"]
    assert longest["CiNCT"] < longest["ICB-WM"]
