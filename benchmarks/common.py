"""Shared fixtures for the benchmark suite.

Every benchmark file reproduces one table or figure of the paper (see
DESIGN.md for the index).  Dataset sizes are controlled by the
``REPRO_BENCH_SCALE`` environment variable (default 1.0); the pure-Python
implementation is orders of magnitude slower than the paper's C++ code, so
the defaults aim for minutes, not hours, while keeping the relative behaviour
of the methods intact.

Index builds are cached per (dataset, variant, block size) so that the many
parametrised benchmarks do not rebuild the same structure repeatedly.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.bench import build_index, bwt_of_bundle, sample_query_workload
from repro.datasets import (
    chess_like,
    mogen_like,
    randwalk,
    roma_like,
    singapore2_like,
    singapore_like,
)

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: The six index variants of Fig. 10, in the paper's order.
FIG10_VARIANTS = ("CiNCT", "UFMI", "ICB-WM", "ICB-Huff", "FM-GMR", "FM-AP-HYB")

#: Query length used by the paper (20); Chess openings are only 10 moves long.
PATTERN_LENGTH = {"Singapore": 12, "Singapore-2": 12, "Roma": 8, "MO-gen": 8, "Chess": 8}

#: Number of sampled queries per measurement (500 in the paper).
N_PATTERNS = int(os.environ.get("REPRO_BENCH_PATTERNS", "30"))


@lru_cache(maxsize=None)
def get_bundle(name: str):
    """Build (once) a dataset analogue at benchmark scale."""
    builders = {
        "Singapore": lambda: singapore_like(scale=BENCH_SCALE),
        "Singapore-2": lambda: singapore2_like(scale=BENCH_SCALE),
        "Roma": lambda: roma_like(scale=BENCH_SCALE),
        "MO-gen": lambda: mogen_like(scale=BENCH_SCALE),
        "Chess": lambda: chess_like(scale=BENCH_SCALE),
    }
    return builders[name]()


@lru_cache(maxsize=None)
def get_randwalk(sigma: int, average_out_degree: float, length_factor: int = 20):
    """Build (once) a RandWalk bundle for the Fig. 12/13 sweeps."""
    return randwalk(
        sigma=sigma,
        average_out_degree=average_out_degree,
        length_factor=length_factor,
        seed=19,
    )


@lru_cache(maxsize=None)
def get_bwt(dataset: str):
    """BWT of a named paper dataset at benchmark scale."""
    return bwt_of_bundle(get_bundle(dataset))


@lru_cache(maxsize=None)
def get_bwt_of_randwalk(sigma: int, average_out_degree: float, length_factor: int = 20):
    """BWT of a RandWalk bundle."""
    return bwt_of_bundle(get_randwalk(sigma, average_out_degree, length_factor))


@lru_cache(maxsize=None)
def get_index(dataset: str, variant: str, block_size: int = 63):
    """Build (once) an index variant on a named paper dataset."""
    return build_index(variant, get_bwt(dataset), block_size=block_size)


@lru_cache(maxsize=None)
def get_randwalk_index(sigma: int, average_out_degree: float, variant: str, block_size: int = 63):
    """Build (once) an index variant on a RandWalk bundle."""
    return build_index(
        variant, get_bwt_of_randwalk(sigma, average_out_degree), block_size=block_size
    )


@lru_cache(maxsize=None)
def get_patterns(dataset: str, pattern_length: int | None = None, n_patterns: int = N_PATTERNS):
    """Sample (once) the query workload for a dataset."""
    length = pattern_length or PATTERN_LENGTH.get(dataset, 10)
    return tuple(
        tuple(p) for p in sample_query_workload(get_bwt(dataset), length, n_patterns, seed=0)
    )


def paper_datasets() -> list[str]:
    """The five dataset analogues, in Table-III order."""
    return ["Singapore", "Singapore-2", "Roma", "MO-gen", "Chess"]
