"""Query-pipeline benchmark: grouped mixed batches and the warm result cache.

Pins the two wins of the staged plan -> optimize -> execute pipeline inside
:class:`repro.engine.TrajectoryEngine`:

* **Grouped mixed-batch throughput** — a heterogeneous service-style batch
  (count / contains / locate / extract, with the duplicates real traffic
  carries) answered by ``run_many``'s grouped vectorized dispatch vs the same
  batch dispatched per query through ``run``.  Both sides run cache-disabled
  so the measurement isolates grouping + dedupe (target >= 2x at full scale).
* **Warm-cache speedup** — a repeated-query workload (the dominant shape
  against a mostly-static fleet) replayed for several rounds on a
  cache-enabled engine vs a cache-disabled one; after the first round every
  plan is served from the epoch-guarded LRU (target >= 5x at full scale).

Results land in ``benchmarks/BENCH_query_pipeline.json`` through
:func:`repro.bench.write_bench_baseline`.  Dataset size follows
``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_PATTERNS`` like the rest of the suite;
CI smoke runs (0.05) check plumbing and bit-identical results only.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from common import BENCH_SCALE, N_PATTERNS, get_bundle
from repro.bench import format_table, write_bench_baseline
from repro.engine import (
    ContainsQuery,
    CountQuery,
    EngineConfig,
    ExtractQuery,
    LocateQuery,
    TrajectoryEngine,
    sample_paths,
)

DATASET = "Singapore"
BLOCK_SIZE = 63

#: Distinct patterns in the workloads (the paper samples 500 queries at full
#: scale; the repeated-query workload replays them ROUNDS times).
N_DISTINCT = max(int(200 * min(BENCH_SCALE, 1.0)), N_PATTERNS, 10)
ROUNDS = 5
PATTERN_LENGTH = 8


def build_engine(cache_size: int) -> TrajectoryEngine:
    bundle = get_bundle(DATASET)
    return TrajectoryEngine.build(
        [list(t) for t in bundle.symbol_trajectories],
        EngineConfig(
            backend="cinct",
            block_size=BLOCK_SIZE,
            sa_sample_rate=16,
            cache_size=cache_size,
        ),
    )


def mixed_batch(engine: TrajectoryEngine, paths, seed: int = 3):
    """A service-style heterogeneous batch with realistic duplication."""
    rng = np.random.default_rng(seed)
    queries = []
    # Count/contains traffic drawn with repetition from the distinct paths.
    for _ in range(2 * len(paths)):
        path = paths[int(rng.integers(len(paths)))]
        queries.append(CountQuery(path) if rng.uniform() < 0.7 else ContainsQuery(path))
    # A thinner stream of locate and extract requests, duplicates included.
    for _ in range(max(len(paths) // 10, 3)):
        queries.append(LocateQuery(paths[int(rng.integers(len(paths) // 2))]))
    for _ in range(max(len(paths) // 10, 3)):
        row = int(rng.integers(0, max(engine.length - 1, 1)))
        queries.append(ExtractQuery(row=row, length=6))
    order = rng.permutation(len(queries))
    return [queries[i] for i in order]


def test_query_pipeline_throughput(report) -> None:
    paths = sample_paths(
        [list(t) for t in get_bundle(DATASET).symbol_trajectories],
        PATTERN_LENGTH,
        N_DISTINCT,
        seed=1,
    )

    # --- grouped mixed batch vs per-query dispatch (both cache-disabled) ---
    per_query_engine = build_engine(cache_size=0)
    grouped_engine = build_engine(cache_size=0)
    batch = mixed_batch(per_query_engine, paths)

    started = time.perf_counter()
    per_query_results = [per_query_engine.run(query) for query in batch]
    per_query_seconds = time.perf_counter() - started

    started = time.perf_counter()
    grouped_results = grouped_engine.run_many(batch)
    grouped_seconds = time.perf_counter() - started

    assert grouped_results == per_query_results  # bit-identical, always
    grouped_speedup = per_query_seconds / max(grouped_seconds, 1e-9)

    # --- warm cache on a repeated-query workload ---
    cold_engine = build_engine(cache_size=4 * N_DISTINCT)
    nocache_engine = build_engine(cache_size=0)
    repeated = [CountQuery(path) for path in paths]

    started = time.perf_counter()
    first_round = cold_engine.run_many(repeated)  # fills the cache
    cold_seconds = time.perf_counter() - started

    warm_rounds: list[float] = []
    for _ in range(ROUNDS):
        started = time.perf_counter()
        warm_results = cold_engine.run_many(repeated)
        warm_rounds.append(time.perf_counter() - started)
        assert warm_results == first_round
    warm_seconds = min(warm_rounds)

    started = time.perf_counter()
    nocache_results = nocache_engine.run_many(repeated)
    nocache_seconds = time.perf_counter() - started
    assert nocache_results == first_round

    warm_speedup = nocache_seconds / max(warm_seconds, 1e-9)
    stats = cold_engine.cache_stats()
    # Each warm round hits once per *distinct* plan (duplicates inside a
    # batch are deduplicated by the optimize stage before the cache).
    n_unique = len({tuple(path) for path in paths})
    assert stats["hits"] >= ROUNDS * n_unique

    rows = [
        {
            "workload": "mixed batch",
            "queries": len(batch),
            "per-query (ms)": round(per_query_seconds * 1e3, 2),
            "grouped (ms)": round(grouped_seconds * 1e3, 2),
            "speedup": round(grouped_speedup, 2),
        },
        {
            "workload": "repeated counts",
            "queries": len(repeated),
            "per-query (ms)": round(nocache_seconds * 1e3, 2),
            "grouped (ms)": round(warm_seconds * 1e3, 2),
            "speedup": round(warm_speedup, 2),
        },
    ]
    table = format_table(rows, title=f"{DATASET} — query pipeline (grouping + cache)")
    report.add("Query pipeline (grouped batches, warm cache)", table)

    write_bench_baseline(
        "query_pipeline",
        {
            "scale": BENCH_SCALE,
            "dataset": DATASET,
            "n_distinct_patterns": N_DISTINCT,
            "mixed_batch_queries": len(batch),
            "per_query_seconds": per_query_seconds,
            "grouped_seconds": grouped_seconds,
            "grouped_speedup": grouped_speedup,
            "repeated_queries": len(repeated),
            "cold_seconds": cold_seconds,
            "nocache_seconds": nocache_seconds,
            "warm_seconds": warm_seconds,
            "warm_cache_speedup": warm_speedup,
            "cache_stats": {key: int(value) for key, value in stats.items()},
        },
        directory=Path(__file__).parent,
    )
    assert (Path(__file__).parent / "BENCH_query_pipeline.json").exists()

    # Smoke runs (CI uses a tiny REPRO_BENCH_SCALE) check plumbing and
    # bit-identical results only; the thresholds hold at full scale.
    if BENCH_SCALE >= 1.0:
        assert grouped_speedup >= 2.0, (
            f"grouped mixed-batch speedup only {grouped_speedup:.1f}x"
        )
        assert warm_speedup >= 5.0, f"warm-cache speedup only {warm_speedup:.1f}x"
