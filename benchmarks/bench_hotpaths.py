"""Hot-path microbenchmarks: vectorized succinct/wavelet/FM paths vs legacy.

This file pins the speedups delivered by the vectorization pass over the
succinct, wavelet and FM-index layers.  It re-implements, verbatim, the
*pre-optimization* scalar paths (per-symbol Python routing during wavelet
construction, per-block Python enumerative RRR encoding, tuple-keyed node
walks, uncached block decodes and ``bin(int(x)).count("1")`` popcounts on
``np.uint64`` scalars) and times them against the shipped implementations on
the same data, in the configuration CiNCT actually uses (RRR bitmaps,
``b = 63``):

* **Wavelet construction** — legacy symbol-at-a-time routing + per-block
  Python RRR encoding vs the level-by-level numpy stable-partition build with
  bulk vectorized block encoding (target >= 5x).
* **Batched count workload** — the pre-PR scalar ``LabeledSearchFM`` loop on
  CiNCT vs the :meth:`CiNCT.count_many` batch API (target >= 3x), with batch
  and scalar results checked bit-identical first.

Results are written to ``benchmarks/BENCH_hotpaths.json`` through
:func:`repro.bench.write_bench_baseline` so later PRs can diff against this
baseline.  Dataset size follows ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_PATTERNS``
like the rest of the suite.
"""

from __future__ import annotations

import copy
import time
from pathlib import Path

import numpy as np

from common import BENCH_SCALE, N_PATTERNS, get_bwt, get_bwt_of_randwalk
from repro.bench import format_table, sample_query_workload, write_bench_baseline
from repro.core import CiNCT
from repro.succinct import build_huffman_code, decode_block, encode_block
from repro.wavelet import HuffmanWaveletTree, rrr_bitvector_factory

#: Dataset for the count workload (its BWT is cached by ``common``).  The
#: road-network analogue is the regime CiNCT targets: small out-degrees mean
#: few distinct RML labels, which is where batched backward search groups
#: best.
DATASET = "Singapore"

#: The count workload uses the paper-sized workload (500 queries) at full
#: scale — batching amortizes per-query overhead, so that is the
#: representative regime, not a handful — and shrinks with REPRO_BENCH_SCALE
#: so smoke runs stay fast.
COUNT_PATTERNS = max(int(500 * min(BENCH_SCALE, 1.0)), N_PATTERNS, 10)

#: Construction is measured on a RandWalk analogue (the Fig. 12/13 machinery):
#: it is larger and higher-entropy than the named datasets, which is exactly
#: where per-symbol routing used to hurt.  Scaled by REPRO_BENCH_SCALE.
CONSTRUCTION_SIGMA = max(64, int(2048 * BENCH_SCALE))
CONSTRUCTION_OUT_DEGREE = 8.0
CONSTRUCTION_LENGTH_FACTOR = 64

RRR_BLOCK_SIZE = 63


class _LegacyRRRBitVector:
    """Verbatim pre-optimization RRR bitmap: Python block encode, uncached rank."""

    def __init__(self, bits, block_size=RRR_BLOCK_SIZE, sample_rate=32):
        arr = np.asarray(list(bits) if not isinstance(bits, np.ndarray) else bits)
        arr = (arr != 0).astype(np.uint8)
        self._n = int(arr.size)
        self._b = block_size
        self._sample_rate = sample_rate
        n_blocks = (self._n + block_size - 1) // block_size if self._n else 0
        padded = np.zeros(n_blocks * block_size, dtype=np.uint8)
        padded[: self._n] = arr
        blocks = padded.reshape(n_blocks, block_size) if n_blocks else padded.reshape(0, block_size)
        classes = np.zeros(n_blocks, dtype=np.uint8)
        offsets = np.zeros(n_blocks, dtype=np.uint64)
        for index in range(n_blocks):
            cls, off = encode_block(tuple(int(x) for x in blocks[index]), block_size)
            classes[index] = cls
            offsets[index] = off
        self._classes = classes
        self._offsets = offsets
        self._rank_samples = np.zeros(n_blocks // sample_rate + 1, dtype=np.int64)
        if n_blocks:
            cum = np.concatenate(([0], np.cumsum(classes.astype(np.int64))))
            for s in range(self._rank_samples.size):
                block_index = min(s * sample_rate, n_blocks)
                self._rank_samples[s] = cum[block_index]

    def _decode(self, block_index):
        return decode_block(int(self._classes[block_index]), int(self._offsets[block_index]), self._b)

    def rank1(self, i: int) -> int:
        if i == 0:
            return 0
        block_index, within = divmod(i, self._b)
        sample_index = block_index // self._sample_rate
        result = int(self._rank_samples[sample_index])
        first_block = sample_index * self._sample_rate
        if block_index > first_block:
            result += int(self._classes[first_block:block_index].sum())
        if within:
            block_bits = self._decode(block_index)
            result += sum(block_bits[:within])
        return result

    def rank0(self, i: int) -> int:
        return i - self.rank1(i)


class _LegacyWaveletTree:
    """Verbatim pre-optimization wavelet tree: per-symbol routing, dict walk."""

    def __init__(self, sequence, codes, bitvector_cls=_LegacyRRRBitVector):
        seq = np.asarray(sequence, dtype=np.int64)
        self._n = int(seq.size)
        self._codes = {int(s): tuple(c) for s, c in codes.items()}
        node_sequences = {(): [int(x) for x in seq]}
        bit_lists = {}
        max_len = max(len(code) for code in self._codes.values())
        prefixes_by_level = [[()]]
        for level in range(max_len):
            next_sequences = {}
            level_prefixes = []
            for prefix in prefixes_by_level[level]:
                elements = node_sequences.get(prefix)
                if not elements:
                    continue
                bits = []
                left = []
                right = []
                all_leaf = True
                for symbol in elements:
                    code = self._codes[symbol]
                    if len(code) <= level:
                        raise ValueError("codes are not prefix-free")
                    bit = code[level]
                    bits.append(bit)
                    if len(code) > level + 1:
                        all_leaf = False
                    (right if bit else left).append(symbol)
                bit_lists[prefix] = bits
                child_left = prefix + (0,)
                child_right = prefix + (1,)
                if left and any(len(self._codes[s]) > level + 1 for s in set(left)):
                    next_sequences[child_left] = left
                    level_prefixes.append(child_left)
                if right and any(len(self._codes[s]) > level + 1 for s in set(right)):
                    next_sequences[child_right] = right
                    level_prefixes.append(child_right)
            node_sequences = next_sequences
            prefixes_by_level.append(level_prefixes)
            if not level_prefixes:
                break
        self._bitvectors = {
            prefix: bitvector_cls(bits) for prefix, bits in bit_lists.items()
        }

    def __len__(self) -> int:
        return self._n

    def rank(self, symbol: int, i: int) -> int:
        code = self._codes.get(int(symbol))
        if code is None:
            return 0
        position = i
        prefix = ()
        for bit in code:
            bitvector = self._bitvectors.get(prefix)
            if bitvector is None:
                return 0
            position = bitvector.rank1(position) if bit else bitvector.rank0(position)
            if position == 0:
                return 0
            prefix = prefix + (bit,)
        return position


def _huffman_codes(sequence):
    values, counts = np.unique(sequence, return_counts=True)
    frequencies = {int(v): int(c) for v, c in zip(values, counts)}
    return build_huffman_code(frequencies).codes


def _best_of(fn, repeats: int):
    """Best-of-N wall-clock time: the standard microbenchmark estimator.

    Returns ``(best_seconds, last_result)``; the minimum over repeats filters
    out scheduler and cache noise that a single cold run is exposed to.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _legacy_cinct(index: CiNCT) -> CiNCT:
    """A CiNCT clone whose wavelet tree is the pre-PR scalar implementation."""
    clone = copy.copy(index)
    clone._wavelet_tree = _LegacyWaveletTree(
        index.labelled_bwt, index.wavelet_tree.codes, bitvector_cls=_LegacyRRRBitVector
    )
    return clone


def test_hotpaths_baseline(report):
    construction_bwt = get_bwt_of_randwalk(
        CONSTRUCTION_SIGMA, CONSTRUCTION_OUT_DEGREE, CONSTRUCTION_LENGTH_FACTOR
    )
    codes = _huffman_codes(construction_bwt.bwt)
    sequence = construction_bwt.bwt

    # ---------------------------------------------------------------- #
    # 1. Wavelet-tree construction (RRR, b = 63, as in CiNCT):
    #    legacy per-symbol routing + Python block encode vs numpy.
    # ---------------------------------------------------------------- #
    legacy_build_seconds, legacy_tree = _best_of(
        lambda: _LegacyWaveletTree(sequence, codes, bitvector_cls=_LegacyRRRBitVector),
        repeats=2,
    )
    new_build_seconds, new_tree = _best_of(
        lambda: HuffmanWaveletTree(
            sequence, bitvector_factory=rrr_bitvector_factory(RRR_BLOCK_SIZE)
        ),
        repeats=3,
    )
    construction_speedup = legacy_build_seconds / max(new_build_seconds, 1e-12)

    # The rebuilt tree must answer exactly like the legacy one.
    probe_positions = range(0, len(sequence) + 1, max(len(sequence) // 64, 1))
    probe_symbols = [int(s) for s in np.unique(sequence)[:8]]
    construction_checks = all(
        legacy_tree.rank(symbol, position) == new_tree.rank(symbol, position)
        for symbol in probe_symbols
        for position in probe_positions
    )
    assert construction_checks

    # ---------------------------------------------------------------- #
    # 2. Count workload on CiNCT: pre-PR scalar LabeledSearchFM loop vs
    #    the count_many batch API.
    # ---------------------------------------------------------------- #
    bwt = get_bwt(DATASET)
    pattern_length = 8
    patterns = sample_query_workload(bwt, pattern_length, COUNT_PATTERNS, seed=0)
    index = CiNCT(bwt, block_size=RRR_BLOCK_SIZE)
    legacy_index = _legacy_cinct(index)

    legacy_count_seconds, legacy_counts = _best_of(
        lambda: [legacy_index.count(pattern) for pattern in patterns], repeats=2
    )
    batched_count_seconds, batched_counts = _best_of(
        lambda: index.count_many(patterns), repeats=3
    )
    scalar_count_seconds, scalar_counts = _best_of(
        lambda: [index.count(pattern) for pattern in patterns], repeats=2
    )

    assert batched_counts == legacy_counts == scalar_counts
    count_speedup = legacy_count_seconds / max(batched_count_seconds, 1e-12)

    payload = {
        "count_dataset": DATASET,
        "construction_dataset": {
            "kind": "randwalk",
            "sigma": CONSTRUCTION_SIGMA,
            "out_degree": CONSTRUCTION_OUT_DEGREE,
            "n": int(len(sequence)),
        },
        "rrr_block_size": RRR_BLOCK_SIZE,
        "n_patterns": int(len(patterns)),
        "pattern_length": pattern_length,
        "wavelet_construction": {
            "legacy_seconds": legacy_build_seconds,
            "vectorized_seconds": new_build_seconds,
            "speedup": construction_speedup,
        },
        "count_workload": {
            "legacy_scalar_seconds": legacy_count_seconds,
            "vectorized_scalar_seconds": scalar_count_seconds,
            "batched_seconds": batched_count_seconds,
            "speedup_batch_vs_legacy": count_speedup,
            "speedup_batch_vs_vectorized_scalar": scalar_count_seconds
            / max(batched_count_seconds, 1e-12),
        },
        "results_bit_identical": bool(construction_checks),
    }
    path = write_bench_baseline("hotpaths", payload, directory=Path(__file__).parent)

    report.add(
        "Hot paths — wavelet construction and batched count (vs pre-PR scalar)",
        format_table(
            [
                {
                    "stage": "HWT+RRR construction",
                    "legacy (s)": round(legacy_build_seconds, 4),
                    "now (s)": round(new_build_seconds, 4),
                    "speedup": round(construction_speedup, 1),
                },
                {
                    "stage": f"CiNCT count x{len(patterns)} (batched)",
                    "legacy (s)": round(legacy_count_seconds, 4),
                    "now (s)": round(batched_count_seconds, 4),
                    "speedup": round(count_speedup, 1),
                },
            ]
        ),
    )
    assert path.exists()
    # The acceptance thresholds of the optimization pass.  They only hold at
    # full benchmark scale: below it the fixed per-call overheads dominate
    # both sides and the ratio is meaningless, so smoke runs (CI sets a tiny
    # REPRO_BENCH_SCALE) check plumbing and bit-identical results only.
    if BENCH_SCALE >= 1.0:
        assert construction_speedup >= 5.0, (
            f"construction speedup only {construction_speedup:.1f}x"
        )
        assert count_speedup >= 3.0, f"batched count speedup only {count_speedup:.1f}x"
