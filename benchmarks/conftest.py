"""Pytest configuration for the benchmark suite."""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def report(request):
    """Accumulates printable result tables and emits them at the end of the run.

    Every benchmark appends the paper-style table/series it regenerates; the
    combined report is printed once the session finishes, and also written to
    ``benchmarks/results.txt`` so it survives terminal scrollback.
    """
    lines: list[str] = []

    class _Report:
        def add(self, title: str, table: str) -> None:
            lines.append(f"\n=== {title} ===\n{table}")

    def _finalise() -> None:
        if not lines:
            return
        text = "\n".join(lines)
        print(text)
        try:
            with open("benchmarks/results.txt", "a", encoding="utf-8") as handle:
                handle.write(text + "\n")
        except OSError:
            pass

    request.addfinalizer(_finalise)
    return _Report()
