"""Fig. 15 — sub-path extraction time per symbol.

The paper extracts the entire trajectory string (l = |T|, j = 0) and reports
the per-symbol time for CiNCT, UFMI, FM-GMR, ICB-Huff and ICB-WM; CiNCT is the
fastest.  At pure-Python scale we extract a large prefix of the string instead
of all of it, which exercises exactly the same per-step work (one access + one
rank per extracted symbol).
"""

from __future__ import annotations

import pytest

from common import get_index
from repro.bench import format_table, measure_extraction_time

METHODS = ("CiNCT", "UFMI", "FM-GMR", "ICB-Huff", "ICB-WM")
EXTRACT_DATASETS = ["Singapore", "Roma", "MO-gen", "Chess"]  # the four of Fig. 15
EXTRACTION_LENGTH = 2000


def _extraction_length(dataset: str) -> int:
    return min(EXTRACTION_LENGTH, get_index(dataset, "CiNCT", 63).index.length)


@pytest.mark.parametrize("dataset", EXTRACT_DATASETS)
@pytest.mark.parametrize("method", METHODS)
def test_fig15_extraction_point(benchmark, dataset, method, report):
    built = get_index(dataset, method, 63)
    length = _extraction_length(dataset)

    benchmark.pedantic(lambda: built.index.extract(0, length), rounds=2, iterations=1)

    per_symbol = measure_extraction_time(built.index, length)
    report.add(
        f"Fig. 15 point — {dataset} / {method}",
        format_table(
            [
                {
                    "dataset": dataset,
                    "method": method,
                    "extraction (us/symbol)": round(per_symbol * 1e6, 2),
                }
            ]
        ),
    )


@pytest.mark.parametrize("dataset", EXTRACT_DATASETS)
def test_fig15_dataset_panel(benchmark, dataset, report):
    length = _extraction_length(dataset)

    def panel():
        rows = []
        for method in METHODS:
            built = get_index(dataset, method, 63)
            per_symbol = measure_extraction_time(built.index, length)
            rows.append(
                {
                    "dataset": dataset,
                    "method": method,
                    "extraction (us/symbol)": round(per_symbol * 1e6, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(panel, rounds=1, iterations=1)
    report.add(f"Fig. 15 panel — extraction time ({dataset})", format_table(rows))

    by_method = {row["method"]: row["extraction (us/symbol)"] for row in rows}
    # CiNCT extracts faster than both ICB baselines (the paper's headline for Fig. 15).
    assert by_method["CiNCT"] < by_method["ICB-Huff"]
    assert by_method["CiNCT"] < by_method["ICB-WM"]
