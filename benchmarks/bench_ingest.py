"""Ingest fast-path benchmark: what the LSM-style mutable tail buys.

Three measurements pin the value of the tail tier (PR: LSM-style ingest):

* **Small-batch append throughput** — the same trajectory stream pushed
  through ``add_batch`` on a tail-enabled engine (O(batch) append into the
  uncompressed tail, no suffix sort) and on the legacy partition-per-batch
  configuration (every batch pays a full BWT + wavelet-tree build).  The
  ratio is the headline number: at full scale the tail path must clear
  ``>= 10x`` the legacy throughput — the acceptance target of the ingest
  fast path.  Both engines answer count queries identically afterwards
  (asserted), so the speedup is not bought with correctness.
* **Compaction wall-clock** — the same stream against a small tail
  threshold, recording how many seals ran and their total/mean wall-clock,
  so the amortised cost of deferred compression is visible next to the
  append win.
* **Query latency during background compaction** — p50/p95 of count queries
  racing a ``compaction="background"`` ingest of the same stream.  Recorded
  for the baseline file, not asserted: wall-clock latency is environment
  noise on shared CI, but the numbers document that queries keep answering
  while seals run.

Results land in ``benchmarks/BENCH_ingest.json`` through
:func:`repro.bench.write_bench_baseline`.  Workload sizes follow
``REPRO_BENCH_SCALE`` (CI smokes at 0.05, which only checks plumbing).
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

import numpy as np

from common import BENCH_SCALE, get_bundle
from repro.bench import assert_at_scale, format_table, write_bench_baseline
from repro.engine import EngineConfig, build_engine, sample_paths

DATASET = "Singapore"
#: Small batches on purpose: per-batch index builds are where the legacy
#: path's fixed BWT cost dominates and the tail's O(batch) append wins.
BATCH_SIZE = 4
N_BATCHES = max(int(60 * BENCH_SCALE), 4)
SPEEDUP_TARGET = 10.0

_BASE = dict(backend="partitioned-cinct", cache_size=0)
#: Legacy growth: every add_batch builds one compressed partition.
LEGACY = EngineConfig(**_BASE)
#: Tail growth, threshold above the whole stream: pure append cost.
TAIL = EngineConfig(**_BASE, tail_max_symbols=10**9)


def _stream():
    """Seed trajectories plus a stream of small ingest batches."""
    trajectories = [list(t) for t in get_bundle(DATASET).symbol_trajectories]
    needed = BATCH_SIZE * (N_BATCHES + 1)
    while len(trajectories) < needed:  # tiny smoke bundles: repeat the data
        trajectories = trajectories + trajectories
    seed = trajectories[:BATCH_SIZE]
    batches = [
        trajectories[BATCH_SIZE * (i + 1) : BATCH_SIZE * (i + 2)]
        for i in range(N_BATCHES)
    ]
    return seed, batches


def _ingest_run(config: EngineConfig) -> tuple[object, float]:
    """Build from the seed, stream every batch, return (engine, seconds)."""
    seed, batches = _stream()
    engine = build_engine(seed, config)
    started = time.perf_counter()
    for batch in batches:
        engine.add_batch(batch)
    elapsed = time.perf_counter() - started
    engine.wait_for_compaction(timeout=120.0)
    return engine, elapsed


def query_latency_during_background_compaction() -> dict:
    """p50/p95 count latency while background seals race the ingest."""
    seed, batches = _stream()
    threshold = max((BATCH_SIZE * N_BATCHES) // 4, BATCH_SIZE)
    engine = build_engine(
        seed,
        EngineConfig(
            **_BASE,
            tail_max_trajectories=threshold,
            compaction="background",
        ),
    )
    probes = sample_paths(seed, 4, 8, seed=5)
    latencies: list[float] = []
    done = threading.Event()

    def _query_loop() -> None:
        while not done.is_set():
            for probe in probes:
                started = time.perf_counter()
                engine.count(probe)
                latencies.append(time.perf_counter() - started)

    thread = threading.Thread(target=_query_loop)
    thread.start()
    try:
        for batch in batches:
            engine.add_batch(batch)
        engine.wait_for_compaction(timeout=120.0)
    finally:
        done.set()
        thread.join(timeout=60.0)
    sample = np.array(latencies)
    compaction = engine.stats()["ingest"]["compaction"]
    return {
        "queries": int(sample.size),
        "p50_ms": float(np.percentile(sample, 50) * 1e3),
        "p95_ms": float(np.percentile(sample, 95) * 1e3),
        "compactions": int(compaction["count"]),
        "compaction_failures": int(compaction["failures"]),
    }


def test_ingest(report) -> None:
    # --- append throughput: tail vs per-batch builds ----------------------- #
    tail_engine, tail_seconds = _ingest_run(TAIL)
    legacy_engine, legacy_seconds = _ingest_run(LEGACY)
    n_appended = BATCH_SIZE * N_BATCHES
    tail_rate = n_appended / tail_seconds
    legacy_rate = n_appended / legacy_seconds
    speedup = tail_rate / legacy_rate
    # The fast path must not cost correctness: both growth modes answer
    # every probe identically.
    seed, _ = _stream()
    for probe in sample_paths(seed, 4, 8, seed=9):
        assert tail_engine.count(probe) == legacy_engine.count(probe), probe
    assert tail_engine.n_trajectories == legacy_engine.n_trajectories

    # --- compaction wall-clock -------------------------------------------- #
    threshold = max((BATCH_SIZE * N_BATCHES) // 4, BATCH_SIZE)
    sealed_engine, _sealed_seconds = _ingest_run(
        EngineConfig(**_BASE, tail_max_trajectories=threshold)
    )
    compaction = sealed_engine.stats()["ingest"]["compaction"]
    assert compaction["count"] >= 1
    mean_seal_ms = (
        compaction["seconds_total"] / compaction["count"] * 1e3
        if compaction["count"]
        else 0.0
    )

    # --- query latency during background compaction ------------------------ #
    background = query_latency_during_background_compaction()

    table = format_table(
        [
            {
                "growth path": "mutable tail (no suffix sort)",
                "appends/s": round(tail_rate, 1),
                "stream (s)": round(tail_seconds, 3),
            },
            {
                "growth path": "per-batch CiNCT build",
                "appends/s": round(legacy_rate, 1),
                "stream (s)": round(legacy_seconds, 3),
            },
        ],
        title=f"{DATASET} — small-batch ingest ({N_BATCHES} batches of {BATCH_SIZE})",
    )
    report.add(
        "LSM-style ingest fast path",
        table
        + f"\nspeedup: {speedup:.1f}x (target >= {SPEEDUP_TARGET:g}x at full "
        f"scale); compaction: {compaction['count']} seals, "
        f"{mean_seal_ms:.1f} ms mean; queries during background compaction: "
        f"p50 {background['p50_ms']:.2f} ms, p95 {background['p95_ms']:.2f} ms "
        f"({background['queries']} samples, {background['compactions']} seals)",
    )

    write_bench_baseline(
        "ingest",
        {
            "scale": BENCH_SCALE,
            "dataset": DATASET,
            "cpu_count": os.cpu_count() or 1,
            "batch_size": BATCH_SIZE,
            "n_batches": N_BATCHES,
            "tail_appends_per_s": tail_rate,
            "legacy_appends_per_s": legacy_rate,
            "speedup": speedup,
            "speedup_target": SPEEDUP_TARGET,
            "compactions": int(compaction["count"]),
            "compaction_seconds_total": float(compaction["seconds_total"]),
            "compaction_mean_ms": mean_seal_ms,
            "tiered_merges": int(compaction["tiered_merges"]),
            "background_query_latency": background,
        },
        directory=Path(__file__).parent,
    )
    assert (Path(__file__).parent / "BENCH_ingest.json").exists()

    # A fixed-cost ratio only means something on a workload big enough to
    # dominate timer noise; smoke runs record the numbers without enforcing.
    if assert_at_scale(BENCH_SCALE):
        assert speedup >= SPEEDUP_TARGET, (
            f"tail ingest delivered only {speedup:.1f}x the per-batch build "
            f"throughput (target {SPEEDUP_TARGET:g}x)"
        )
