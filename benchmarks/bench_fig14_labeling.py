"""Fig. 14 — effect of the labelling strategy (bigram-sorted vs random).

The paper compares the proposed bigram-sorting strategy against random label
assignment across datasets and block sizes; bigram sorting is always at least
as small and at least as fast.  We reproduce the comparison for every dataset
analogue at b = 63 and sweep b in {15, 31, 63} on the Singapore-2 analogue.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import get_bwt, get_patterns, paper_datasets
from repro.bench import format_table, measure_search_time
from repro.core import CiNCT


def _build(dataset: str, strategy: str, block_size: int) -> CiNCT:
    bwt = get_bwt(dataset)
    return CiNCT(
        bwt,
        block_size=block_size,
        labeling_strategy=strategy,  # type: ignore[arg-type]
        rng=np.random.default_rng(0) if strategy == "random" else None,
    )


def _measure(dataset: str, strategy: str, block_size: int = 63) -> dict[str, object]:
    index = _build(dataset, strategy, block_size)
    timing = measure_search_time(index, get_patterns(dataset))
    return {
        "dataset": dataset,
        "strategy": "bigram (proposed)" if strategy == "bigram" else strategy,
        "b": block_size,
        "bits/symbol": round(index.bits_per_symbol(), 2),
        "search (us)": round(timing.mean_microseconds, 1),
    }


@pytest.mark.parametrize("dataset", paper_datasets())
def test_fig14_bigram_vs_random(benchmark, dataset, report):
    rows = benchmark.pedantic(
        lambda: [_measure(dataset, "bigram"), _measure(dataset, "random")],
        rounds=1,
        iterations=1,
    )
    report.add(f"Fig. 14 — labelling strategies on {dataset}", format_table(rows))
    bigram, random_rows = rows[0], rows[1]
    # Theorem 3 in practice: the bigram ordering is never larger.
    assert bigram["bits/symbol"] <= random_rows["bits/symbol"] + 0.05


@pytest.mark.parametrize("block_size", [15, 31, 63])
def test_fig14_block_size_sweep(benchmark, block_size, report):
    dataset = "Singapore-2"
    rows = benchmark.pedantic(
        lambda: [
            _measure(dataset, "bigram", block_size),
            _measure(dataset, "random", block_size),
        ],
        rounds=1,
        iterations=1,
    )
    report.add(f"Fig. 14 — b={block_size} sweep ({dataset})", format_table(rows))
    assert rows[0]["bits/symbol"] <= rows[1]["bits/symbol"] + 0.05
