"""Ablation — the cost and benefit of PseudoRank.

PseudoRank lets CiNCT answer rank queries over the *original* BWT while only
storing the *labelled* BWT, at the price of one correction-term lookup per
rank.  This ablation measures

* the raw rank latency on the labelled HWT (shallow tree) vs the unlabelled
  HWT (deep tree) — the mechanism behind Theorem 1 / Section V-C; and
* the end-to-end benefit: CiNCT vs ICB-Huff (which is exactly "the same index
  without RML + PseudoRank") on size and query time.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import get_bwt, get_index, get_patterns
from repro.bench import format_table, measure_search_time
from repro.core import ETGraph, build_rml, label_bwt
from repro.wavelet import HuffmanWaveletTree, rrr_bitvector_factory

DATASET = "Singapore-2"


@pytest.fixture(scope="module")
def trees():
    bwt = get_bwt(DATASET)
    graph = ETGraph(bwt.text, sigma=bwt.sigma)
    rml = build_rml(graph)
    labelled = label_bwt(bwt.bwt, bwt.c_array, rml)
    labelled_tree = HuffmanWaveletTree(labelled, rrr_bitvector_factory(63))
    original_tree = HuffmanWaveletTree(bwt.bwt, rrr_bitvector_factory(63))
    return bwt, labelled, labelled_tree, original_tree


def test_ablation_rank_depth(benchmark, trees, report):
    """Ranks on the labelled HWT touch far fewer wavelet-tree levels."""
    bwt, labelled, labelled_tree, original_tree = trees
    rng = np.random.default_rng(0)
    positions = rng.integers(0, bwt.length, size=300)

    def rank_labelled():
        for position in positions:
            labelled_tree.rank(int(labelled[position]), int(position))

    benchmark.pedantic(rank_labelled, rounds=3, iterations=1)

    rows = [
        {
            "structure": "HWT over phi(Tbwt) (CiNCT)",
            "average depth (bits)": round(labelled_tree.average_depth(), 2),
        },
        {
            "structure": "HWT over Tbwt (ICB-Huff)",
            "average depth (bits)": round(original_tree.average_depth(), 2),
        },
    ]
    report.add("Ablation — Huffman depth with and without RML", format_table(rows))
    assert labelled_tree.average_depth() < original_tree.average_depth()


def test_ablation_pseudorank_end_to_end(benchmark, trees, report):
    """CiNCT (RML + PseudoRank) vs ICB-Huff (no labelling) on the same data."""
    cinct = get_index(DATASET, "CiNCT", 63)
    icb = get_index(DATASET, "ICB-Huff", 63)
    patterns = get_patterns(DATASET)

    def run_both():
        cinct_time = measure_search_time(cinct.index, patterns).mean_microseconds
        icb_time = measure_search_time(icb.index, patterns).mean_microseconds
        return cinct_time, icb_time

    cinct_time, icb_time = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        {
            "method": "CiNCT (RML + PseudoRank)",
            "bits/symbol": round(cinct.bits_per_symbol(), 2),
            "search (us)": round(cinct_time, 1),
        },
        {
            "method": "ICB-Huff (no labelling)",
            "bits/symbol": round(icb.bits_per_symbol(), 2),
            "search (us)": round(icb_time, 1),
        },
    ]
    report.add("Ablation — PseudoRank end-to-end benefit", format_table(rows))
    assert cinct.bits_per_symbol() < icb.bits_per_symbol()
    assert cinct_time < icb_time
