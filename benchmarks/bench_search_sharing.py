"""Workload-aware search sharing: what the trie + interval cache buy.

Two measurements pin the value of the search-sharing layer (PR 10):

* **Trie-shared batch throughput** — a suffix-redundant count workload
  (many query paths nested as prefixes of a few long hot paths, the shape
  coalesced service batches actually have) pushed through the trie-shared
  ``count_many`` path and through the PR-1 grouped batch baseline (the
  per-step bigram-grouped ``advance`` reproduced verbatim below from the
  pre-trie ``CiNCT.suffix_range_many``).  The trie pays one backward-search
  step per *distinct* trie node instead of one per pattern symbol, so the
  nested workload must clear ``>= 2x`` the baseline's throughput at full
  scale.
* **Warm interval-cache extensions** — incremental one-edge extensions of
  already-searched paths (an interactive client lengthening its query),
  answered scalar with a warm :class:`~repro.engine.executor.IntervalCache`
  versus cold from scratch.  A warm extension resumes from the cached
  parent range and pays a single LF-step, so it must clear ``>= 5x`` the
  cold latency at full scale.

Results land in ``benchmarks/BENCH_search_sharing.json`` through
:func:`repro.bench.write_bench_baseline`.  Both ratio targets are enforced
only when :func:`repro.bench.assert_at_scale` says the workload is big
enough (``REPRO_BENCH_SCALE`` — CI smokes at 0.05, which only checks
plumbing and bit-identity).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from common import BENCH_SCALE, N_PATTERNS, get_bwt, get_index
from repro.bench import (
    assert_at_scale,
    format_table,
    sample_query_workload,
    write_bench_baseline,
)
from repro.engine.executor import IntervalCache
from repro.fmindex.base import batched_backward_search, iter_key_groups

DATASET = "Singapore"
#: Length of each hot path (travel order); prefixes of these form the batch.
BASE_LENGTH = 28
#: Hot paths in the suffix-redundant workload.
N_HOT = max(int(48 * BENCH_SCALE), 2)
#: Every hot path contributes its prefixes of these lengths (plus itself).
PREFIX_LENGTHS = tuple(range(2, BASE_LENGTH + 1))
#: Incremental-extension workload size (pattern length BASE_LENGTH + 1).
N_EXTENSIONS = max(N_PATTERNS, 2)
TRIE_TARGET = 2.0
WARM_TARGET = 5.0
REPEATS = 5


def grouped_count_many(index, patterns) -> list[int]:
    """The PR-1 grouped batch path, reproduced verbatim as the baseline.

    This is the pre-trie ``CiNCT.suffix_range_many``: all patterns advance
    in lockstep through a padded matrix, and at every step the still-active
    patterns are grouped by their (context, w) bigram / RML label so each
    group shares one vectorized ``rank_many`` call.  Rank work still scales
    with the *total* number of active patterns per step — exactly what the
    trie collapses to distinct nodes.
    """
    pats = [index._validated_pattern(p) for p in patterns]
    c = index._c_array

    def advance(step, active, matrix, sp, ep):
        keys = matrix[active, step - 1] * np.int64(index._sigma) + matrix[active, step]
        label_entries: dict[int, list[tuple[int, np.ndarray]]] = {}
        for key, members in iter_key_groups(active, keys):
            context, w = divmod(key, index._sigma)
            if not index._rml.has_label(w, context):
                continue
            label = index._rml.label(w, context)
            base = int(c[w]) - index._corrections.get(context, w)
            label_entries.setdefault(label, []).append((base, members))
        if not label_entries:
            return np.zeros(0, dtype=np.int64)
        surviving: list[np.ndarray] = []
        for label, entries in label_entries.items():
            members = np.concatenate([group for _, group in entries])
            bases = np.repeat(
                np.fromiter(
                    (base for base, _ in entries), dtype=np.int64, count=len(entries)
                ),
                [group.size for _, group in entries],
            )
            frontier = np.concatenate([sp[members], ep[members]])
            ranks = index._wavelet_tree.rank_many(label, frontier)
            sp[members] = bases + ranks[: members.size]
            ep[members] = bases + ranks[members.size :]
            surviving.append(members)
        return np.sort(np.concatenate(surviving))

    ranges = batched_backward_search(pats, c, advance)
    return [0 if found is None else found[1] - found[0] for found in ranges]


def suffix_redundant_workload() -> list[tuple[int, ...]]:
    """Prefix-nested count patterns: the shape trie sharing exists for."""
    hot = sample_query_workload(get_bwt(DATASET), BASE_LENGTH, N_HOT, seed=31)
    patterns = [tuple(path[:k]) for path in hot for k in PREFIX_LENGTHS]
    # Deterministic shuffle: sharing must not depend on batch order.
    rng = np.random.default_rng(31)
    return [patterns[i] for i in rng.permutation(len(patterns))]


def extension_workload() -> list[tuple[int, ...]]:
    """One-edge extensions: full paths whose length-minus-one prefix is warm."""
    paths = sample_query_workload(
        get_bwt(DATASET), BASE_LENGTH + 1, N_EXTENSIONS, seed=47
    )
    return [tuple(path) for path in paths]


def best_of(fn, repeats: int = REPEATS) -> float:
    """Minimum wall-clock of ``repeats`` runs (robust to scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_search_sharing(report) -> None:
    index = get_index(DATASET, "CiNCT").index

    # --- trie-shared batch vs the PR-1 grouped baseline ------------------- #
    batch = suffix_redundant_workload()
    trie_counts = index.count_many(batch)
    grouped_counts = grouped_count_many(index, batch)
    assert trie_counts == grouped_counts  # bit-identical before timing
    trie_seconds = best_of(lambda: index.count_many(batch))
    grouped_seconds = best_of(lambda: grouped_count_many(index, batch))
    trie_speedup = grouped_seconds / trie_seconds

    # --- warm interval-cache one-edge extensions --------------------------- #
    extensions = extension_workload()
    bases = [pattern[:-1] for pattern in extensions]
    cold_results = [index.suffix_range(pattern) for pattern in extensions]

    def warm_cache() -> IntervalCache:
        cache = IntervalCache(capacity=4 * len(extensions))
        for base in bases:
            index.suffix_range(base, interval_cache=cache)
        return cache

    warm = warm_cache()
    warm_results = [
        index.suffix_range(pattern, interval_cache=warm) for pattern in extensions
    ]
    assert warm_results == cold_results  # cache resume is bit-identical

    def timed_warm() -> None:
        # Re-warm outside the timed region each repeat so every measured
        # query resumes from its parent's cached range (not a full-key hit
        # left behind by the previous repeat).
        cache = timed_warm.cache  # type: ignore[attr-defined]
        for pattern in extensions:
            index.suffix_range(pattern, interval_cache=cache)

    cold_seconds = best_of(
        lambda: [index.suffix_range(pattern) for pattern in extensions]
    )
    warm_best = float("inf")
    for _ in range(REPEATS):
        timed_warm.cache = warm_cache()  # type: ignore[attr-defined]
        started = time.perf_counter()
        timed_warm()
        warm_best = min(warm_best, time.perf_counter() - started)
    warm_speedup = cold_seconds / warm_best

    table = format_table(
        [
            {
                "workload": "suffix-redundant batch",
                "queries": len(batch),
                "baseline (ms)": round(grouped_seconds * 1e3, 2),
                "shared (ms)": round(trie_seconds * 1e3, 2),
                "speedup": round(trie_speedup, 2),
                "target": f">= {TRIE_TARGET:g}x",
            },
            {
                "workload": "one-edge extensions",
                "queries": len(extensions),
                "baseline (ms)": round(cold_seconds * 1e3, 2),
                "shared (ms)": round(warm_best * 1e3, 2),
                "speedup": round(warm_speedup, 2),
                "target": f">= {WARM_TARGET:g}x",
            },
        ],
        title=f"{DATASET} — workload-aware search sharing",
    )
    report.add("Search sharing (pattern trie + interval cache)", table)

    write_bench_baseline(
        "search_sharing",
        {
            "scale": BENCH_SCALE,
            "dataset": DATASET,
            "n_hot_paths": N_HOT,
            "base_length": BASE_LENGTH,
            "n_batch_patterns": len(batch),
            "n_extensions": len(extensions),
            "grouped_baseline_seconds": grouped_seconds,
            "trie_shared_seconds": trie_seconds,
            "trie_speedup": trie_speedup,
            "trie_target": TRIE_TARGET,
            "cold_extension_seconds": cold_seconds,
            "warm_extension_seconds": warm_best,
            "warm_speedup": warm_speedup,
            "warm_target": WARM_TARGET,
        },
        directory=Path(__file__).parent,
    )
    assert (Path(__file__).parent / "BENCH_search_sharing.json").exists()

    # Fixed costs (trie construction, cache probing) only amortise on a
    # full-scale workload; smoke runs record the table without asserting.
    if assert_at_scale(BENCH_SCALE):
        assert trie_speedup >= TRIE_TARGET, (
            f"trie sharing delivered only {trie_speedup:.2f}x the grouped "
            f"baseline (target {TRIE_TARGET:g}x)"
        )
        assert warm_speedup >= WARM_TARGET, (
            f"warm interval-cache extensions delivered only "
            f"{warm_speedup:.2f}x cold latency (target {WARM_TARGET:g}x)"
        )
