"""Table III — statistics of each dataset.

Reproduces the columns |T|, lg sigma, H0(T), H0(phi(Tbwt)), H1(T) and d-bar
for the five dataset analogues.  The paper-shape relationships that must hold:

* ``H0(phi(Tbwt))`` is far below ``H0(T)`` on every dataset (Eq. 10);
* the gapped Singapore analogue has a much larger d-bar than Singapore-2;
* the Chess analogue has the sparsest ET-graph.
"""

from __future__ import annotations

import pytest

from common import get_bundle, get_bwt, paper_datasets
from repro.analysis import dataset_statistics
from repro.bench import format_table


@pytest.mark.parametrize("dataset", paper_datasets())
def test_table3_dataset_statistics(benchmark, dataset, report):
    bundle = get_bundle(dataset)
    bwt = get_bwt(dataset)

    stats = benchmark.pedantic(
        lambda: dataset_statistics(dataset, bundle.text, bundle.sigma, bwt_result=bwt),
        rounds=1,
        iterations=1,
    )

    assert stats.h0_labelled < stats.h0, "RML must reduce the 0th-order entropy (Eq. 10)"
    assert stats.h1 <= stats.h0 + 1e-9

    report.add(f"Table III row — {dataset}", format_table([stats.as_row()]))


def test_table3_full_table(benchmark, report):
    def build_rows():
        rows = []
        for dataset in paper_datasets():
            bundle = get_bundle(dataset)
            stats = dataset_statistics(
                dataset, bundle.text, bundle.sigma, bwt_result=get_bwt(dataset)
            )
            rows.append(stats.as_row())
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report.add(
        "Table III — statistics of each dataset (synthetic analogues)",
        format_table(rows),
    )

    by_name = {row["dataset"]: row for row in rows}
    # Gap interpolation reduces the ET-graph density (26.8 -> 4.0 in the paper).
    assert by_name["Singapore"]["d_bar"] > by_name["Singapore-2"]["d_bar"]
    # The Chess analogue has very sparse transitions (1.6 in the paper); it
    # must stay far below the gapped Singapore analogue and in the same
    # "road-network-sparse" band as the connected vehicular datasets.
    assert by_name["Chess"]["d_bar"] < 2.5
    assert by_name["Chess"]["d_bar"] < by_name["Singapore"]["d_bar"]
    # Every dataset keeps the labelled entropy far below the raw entropy.
    for row in rows:
        assert row["H0(phi)"] < row["H0(T)"]
