"""Reliability layer benchmark: policy overhead and degraded-mode latency.

Pins the two costs of the fan-out reliability layer
(:mod:`repro.engine.reliability`):

* **Policy overhead on the happy path** — the same mixed count/contains
  batch answered by a 4-shard fleet with no policy (the default no-op
  :class:`~repro.engine.ShardPolicy`) and with a deadline + retry budget
  armed.  With a deadline configured every attempt runs through a dedicated
  watcher thread, so this is the honest price of enforcement; the <5%
  overhead target is asserted at full scale (CI smoke runs at 0.05 only
  check plumbing — thread dispatch is a fixed cost that dominates
  microscopic batches).
* **Degraded-mode latency under a hung shard** — one shard armed to hang
  well past the deadline (:mod:`repro.reliability.faults`); with
  ``degraded_results`` on, the batch must still answer in roughly one
  deadline rather than one hang, and come back flagged with the failed
  shard listed.

Results land in ``benchmarks/BENCH_reliability.json`` through
:func:`repro.bench.write_bench_baseline`.  Dataset size follows
``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_PATTERNS``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from common import BENCH_SCALE, N_PATTERNS, get_bundle
from repro.bench import format_table, write_bench_baseline
from repro.engine import (
    ContainsQuery,
    CountQuery,
    EngineConfig,
    build_engine,
    sample_paths,
)
from repro.reliability import faults

DATASET = "Singapore"
BLOCK_SIZE = 63
NUM_SHARDS = 4
PATTERN_LENGTH = 8
N_DISTINCT = max(int(200 * min(BENCH_SCALE, 1.0)), N_PATTERNS, 10)
#: Replays per configuration; the median wall-clock is reported.
N_ROUNDS = 5
#: Per-attempt deadline armed for the policy/degraded runs (seconds).
DEADLINE = 2.0
#: How long the hung shard sleeps — far past the deadline.
HANG_MS = 10_000.0
OVERHEAD_TARGET = 0.05


def _trajectories():
    return [list(t) for t in get_bundle(DATASET).symbol_trajectories]


def build_fleet(**overrides):
    return build_engine(
        _trajectories(),
        EngineConfig(
            backend="cinct",
            block_size=BLOCK_SIZE,
            cache_size=0,  # every replay must actually fan out
            num_shards=NUM_SHARDS,
            **overrides,
        ),
    )


def mixed_batch(paths, seed: int = 11):
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(2 * len(paths)):
        path = paths[int(rng.integers(len(paths)))]
        queries.append(CountQuery(path) if rng.uniform() < 0.7 else ContainsQuery(path))
    return queries


def median_seconds(engine, batch) -> tuple[float, list]:
    engine.run_many(batch[: max(len(batch) // 8, 1)])  # warm code paths
    samples = []
    results = None
    for _ in range(N_ROUNDS):
        started = time.perf_counter()
        results = engine.run_many(batch)
        samples.append(time.perf_counter() - started)
    return float(np.median(samples)), results


def test_reliability(report) -> None:
    faults.clear_faults()
    trajectories = _trajectories()
    paths = sample_paths(trajectories, PATTERN_LENGTH, N_DISTINCT, seed=7)
    batch = mixed_batch(paths)

    # --- policy overhead on the happy path ------------------------------- #
    bare = build_fleet()
    assert bare.policy.is_noop
    bare_seconds, bare_results = median_seconds(bare, batch)

    policed = build_fleet(shard_deadline=DEADLINE, shard_retries=2)
    assert not policed.policy.is_noop
    policed_seconds, policed_results = median_seconds(policed, batch)
    assert policed_results == bare_results  # the policy never changes answers

    overhead = policed_seconds / bare_seconds - 1.0

    # --- degraded-mode latency under one hung shard ----------------------- #
    degraded_engine = build_fleet(
        shard_deadline=0.25, degraded_results=True
    )
    hang_shard = 1
    with faults.shard_fault(hang_shard, "hang", delay_ms=HANG_MS):
        started = time.perf_counter()
        degraded_results = degraded_engine.run_many(batch)
        degraded_seconds = time.perf_counter() - started
    flagged = [r for r in degraded_results if r.degraded]
    assert flagged, "a hung shard must flag the merged results"
    assert all(r.failed_shards == (hang_shard,) for r in flagged)
    # The batch answers in deadline time, not hang time.
    assert degraded_seconds < HANG_MS / 1e3 / 2, (
        f"degraded batch took {degraded_seconds:.2f}s — the hang leaked through"
    )

    rows = [
        {
            "configuration": "no policy",
            "batch (ms)": round(bare_seconds * 1e3, 2),
        },
        {
            "configuration": f"deadline {DEADLINE:g}s + 2 retries",
            "batch (ms)": round(policed_seconds * 1e3, 2),
        },
        {
            "configuration": "degraded (1 shard hung)",
            "batch (ms)": round(degraded_seconds * 1e3, 2),
        },
    ]
    table = format_table(rows, title=f"{DATASET} — fan-out reliability")
    report.add(
        "Reliability (policy overhead, degraded merges)",
        table + f"\npolicy overhead: {overhead:+.1%} (target < {OVERHEAD_TARGET:.0%})",
    )

    write_bench_baseline(
        "reliability",
        {
            "scale": BENCH_SCALE,
            "dataset": DATASET,
            "cpu_count": os.cpu_count() or 1,
            "num_shards": NUM_SHARDS,
            "n_patterns": N_DISTINCT,
            "batch_queries": len(batch),
            "bare_seconds": bare_seconds,
            "policed_seconds": policed_seconds,
            "policy_overhead": overhead,
            "degraded_seconds": degraded_seconds,
            "deadline_seconds": DEADLINE,
            "hang_ms": HANG_MS,
        },
        directory=Path(__file__).parent,
    )
    assert (Path(__file__).parent / "BENCH_reliability.json").exists()

    # Thread dispatch per attempt is a fixed cost; only a full-scale batch
    # amortises it enough for the percentage target to be meaningful.
    if BENCH_SCALE >= 1.0:
        assert overhead < OVERHEAD_TARGET, (
            f"reliability policy costs {overhead:.1%} on the happy path"
        )
