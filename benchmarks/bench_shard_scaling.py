"""Sharded fleet benchmark: mixed-batch throughput and cache retention.

Pins the two properties of the sharded fleet layer
(:class:`repro.engine.ShardedTrajectoryEngine`):

* **Mixed-batch throughput at 1/2/4/8 shards** — a service-style
  heterogeneous batch (count / contains / locate / extract) answered by each
  fleet size, cache-disabled, results asserted bit-identical to the
  single-shard engine.  The fan-out runs on a bounded thread pool: count-type
  work is replicated per shard (every shard must be consulted), while locate
  occurrences and routed extractions genuinely split across shards, so the
  speedup comes from overlapping the shards' numpy sections on real cores.
  The >= 1.5x target at 4 shards is therefore asserted only at full scale
  *and* when the host actually has >= 4 CPUs — on a single-core host there
  is nothing for the fan-out to overlap and the table simply records the
  serialized cost.
* **Cache retention under growth** — the reason the layer exists even on one
  core: with per-shard growth epochs, ``add_batch`` routed to one shard must
  leave the other shards' warm result caches intact.  The benchmark warms a
  4-shard fleet, grows exactly one shard, replays the workload and reports
  the fraction of the untouched shards' plans still served from cache
  (>= 90% asserted, at every scale — a single-shard engine retains 0%).

Results land in ``benchmarks/BENCH_shard_scaling.json`` through
:func:`repro.bench.write_bench_baseline`.  Dataset size follows
``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_PATTERNS``; CI smoke runs (0.05) check
plumbing, bit-identical merges and retention only.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from common import BENCH_SCALE, N_PATTERNS, get_bundle
from repro.bench import format_table, write_bench_baseline
from repro.engine import (
    ContainsQuery,
    CountQuery,
    EngineConfig,
    ExtractQuery,
    LocateQuery,
    build_engine,
    sample_paths,
)

DATASET = "Singapore"
BLOCK_SIZE = 63
SHARD_COUNTS = (1, 2, 4, 8)

N_DISTINCT = max(int(200 * min(BENCH_SCALE, 1.0)), N_PATTERNS, 10)
PATTERN_LENGTH = 8
#: High-frequency locate patterns (short paths -> many occurrences to split).
N_LOCATE = max(N_DISTINCT // 4, 5)


def _trajectories():
    return [list(t) for t in get_bundle(DATASET).symbol_trajectories]


def build_fleet(num_shards: int, backend: str = "cinct", cache_size: int = 0):
    return build_engine(
        _trajectories(),
        EngineConfig(
            backend=backend,
            block_size=BLOCK_SIZE,
            sa_sample_rate=16,
            cache_size=cache_size,
            num_shards=num_shards,
        ),
    )


def mixed_batch(row_bound: int, paths, locate_paths, seed: int = 3):
    """A service-style heterogeneous batch, identical across fleet sizes.

    ``row_bound`` is the single-shard engine's string length — the smallest
    row space of the fleets compared — so one batch object replays verbatim
    on every engine (extraction answers are row-space-dependent and are
    excluded from the bit-identity check, everything else must merge
    identically).
    """
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(2 * len(paths)):
        path = paths[int(rng.integers(len(paths)))]
        queries.append(CountQuery(path) if rng.uniform() < 0.7 else ContainsQuery(path))
    for path in locate_paths:
        queries.append(LocateQuery(path))
    for _ in range(len(paths) // 2):
        row = int(rng.integers(0, max(row_bound - PATTERN_LENGTH, 1)))
        queries.append(ExtractQuery(row=row, length=6))
    order = rng.permutation(len(queries))
    return [queries[i] for i in order]


def measure_throughput(report_rows: list[dict]) -> dict[int, float]:
    trajectories = _trajectories()
    count_paths = sample_paths(trajectories, PATTERN_LENGTH, N_DISTINCT, seed=1)
    locate_paths = sample_paths(trajectories, 2, N_LOCATE, seed=2)

    seconds: dict[int, float] = {}
    reference_results = None
    reference_counts = None
    batch = None
    for num_shards in SHARD_COUNTS:
        engine = build_fleet(num_shards)
        if batch is None:  # SHARD_COUNTS starts at 1: the smallest row space
            batch = mixed_batch(engine.length, count_paths, locate_paths)
        engine.run_many(batch[: len(batch) // 8])  # warm code paths, no cache
        started = time.perf_counter()
        results = engine.run_many(batch)
        seconds[num_shards] = time.perf_counter() - started
        # Extraction rows address different (concatenated) row spaces per
        # fleet size; everything else must merge bit-identically.
        comparable = [r for r in results if not isinstance(r.query, ExtractQuery)]
        if reference_results is None:
            reference_results = comparable
            reference_counts = engine.count_many(count_paths)
        else:
            assert comparable == reference_results  # bit-identical merges
            assert engine.count_many(count_paths) == reference_counts
        report_rows.append(
            {
                "shards": num_shards,
                "queries": len(batch),
                "batch (ms)": round(seconds[num_shards] * 1e3, 2),
                "speedup vs 1": round(seconds[1] / seconds[num_shards], 2),
            }
        )
    return seconds


def measure_retention() -> dict[str, float]:
    """Warm a 4-shard fleet, grow one shard, replay, report cache retention."""
    trajectories = _trajectories()
    paths = sample_paths(trajectories, PATTERN_LENGTH, N_DISTINCT, seed=4)
    retention: dict[str, float] = {}
    for num_shards in (1, 4):
        engine = build_fleet(
            num_shards, backend="partitioned-cinct", cache_size=4 * N_DISTINCT
        )
        engine.count_many(paths)  # fill
        engine.count_many(paths)  # warm
        shards = list(engine.shards) if num_shards > 1 else [engine]
        # On a sharded fleet the grown shard legitimately recomputes, so
        # retention is measured over the *untouched* shards; the single-shard
        # engine has no untouched part — its whole (wholesale-invalidated)
        # cache is the measured baseline.
        target = engine.router.shard_of(engine.n_trajectories) if num_shards > 1 else None
        # One new trajectory lands on exactly one shard.
        engine.add_batch([trajectories[0]])
        hits_before = [shard.cache_stats()["hits"] for shard in shards]
        misses_before = [shard.cache_stats()["misses"] for shard in shards]
        engine.count_many(paths)  # replay
        replay_hits = replay_misses = 0
        for shard_id, shard in enumerate(shards):
            if shard_id == target:
                continue
            stats = shard.cache_stats()
            replay_hits += stats["hits"] - hits_before[shard_id]
            replay_misses += stats["misses"] - misses_before[shard_id]
        asked = replay_hits + replay_misses
        assert asked > 0  # the replay must actually consult the measured caches
        retention[f"{num_shards}_shards"] = replay_hits / asked
    return retention


def test_shard_scaling(report) -> None:
    rows: list[dict] = []
    seconds = measure_throughput(rows)
    retention = measure_retention()

    table = format_table(rows, title=f"{DATASET} — sharded mixed-batch throughput")
    retention_line = (
        f"cache retention under growth: 1 shard "
        f"{retention['1_shards']:.0%}, 4 shards {retention['4_shards']:.0%} "
        f"(untouched shards' replay hits)"
    )
    report.add("Shard scaling (fan-out/merge, shard-scoped caches)", table + "\n" + retention_line)

    speedup_4 = seconds[1] / seconds[4]
    write_bench_baseline(
        "shard_scaling",
        {
            "scale": BENCH_SCALE,
            "dataset": DATASET,
            "cpu_count": os.cpu_count() or 1,
            "n_count_patterns": N_DISTINCT,
            "n_locate_patterns": N_LOCATE,
            "batch_seconds": {str(n): seconds[n] for n in SHARD_COUNTS},
            "speedup_vs_single": {
                str(n): seconds[1] / seconds[n] for n in SHARD_COUNTS
            },
            "cache_retention_under_growth": retention,
        },
        directory=Path(__file__).parent,
    )
    assert (Path(__file__).parent / "BENCH_shard_scaling.json").exists()

    # Shard-scoped invalidation holds at every scale: growing one shard keeps
    # (essentially all of) the other shards' warm plans; a single-shard
    # engine keeps none of them.
    assert retention["4_shards"] >= 0.9, (
        f"untouched shards retained only {retention['4_shards']:.0%} of warm hits"
    )
    assert retention["1_shards"] == 0.0

    # The wall-clock target needs hardware to overlap on: the fan-out is a
    # thread pool, so a single-core host serializes the shards and simply
    # records the table above.
    if BENCH_SCALE >= 1.0 and (os.cpu_count() or 1) >= 4:
        assert speedup_4 >= 1.5, (
            f"4-shard mixed-batch speedup only {speedup_4:.2f}x"
        )
