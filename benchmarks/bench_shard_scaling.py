"""Sharded fleet benchmark: mixed-batch throughput, executors and cache retention.

Pins three properties of the sharded fleet layer
(:class:`repro.engine.ShardedTrajectoryEngine`):

* **Mixed-batch throughput at 1/2/4/8 shards, per executor** — a
  service-style heterogeneous batch (count / contains / locate / extract)
  answered by each fleet size under every fan-out executor (``serial``,
  ``threads``, ``processes``), cache-disabled, results asserted bit-identical
  across executors *and* to the single-shard engine.  The thread pool
  overlaps the shards' numpy sections; the persistent worker-process pool
  additionally escapes the GIL for the pure-Python rank/select loops.  The
  >= 1.5x target at 4 shards is enforced via
  :func:`repro.bench.assert_at_scale` — only at full scale and on hosts with
  >= 4 CPUs; a single-core host just records the table.
* **Zero-copy loads** — a saved fleet is reloaded both ways:
  full deserialization versus ``load_index(..., mmap=True)``, which maps the
  large immutable arrays read-only so N shard workers share one page-cache
  copy.  Both load times land in the baseline payload.
* **Cache retention under growth** — the reason the layer exists even on one
  core: with per-shard growth epochs, ``add_batch`` routed to one shard must
  leave the other shards' warm result caches intact.  The benchmark warms a
  4-shard fleet, grows exactly one shard, replays the workload and reports
  the fraction of the untouched shards' plans still served from cache
  (>= 90% asserted, at every scale — a single-shard engine retains 0%).

Results land in ``benchmarks/BENCH_shard_scaling.json`` through
:func:`repro.bench.write_bench_baseline`.  Dataset size follows
``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_PATTERNS``; CI smoke runs (0.05) check
plumbing, bit-identical merges and retention only.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

import numpy as np

from common import BENCH_SCALE, N_PATTERNS, get_bundle
from repro.bench import assert_at_scale, format_table, write_bench_baseline
from repro.engine import (
    ContainsQuery,
    CountQuery,
    EngineConfig,
    ExtractQuery,
    LocateQuery,
    build_engine,
    sample_paths,
)
from repro.io import load_index, save_index

DATASET = "Singapore"
BLOCK_SIZE = 63
SHARD_COUNTS = (1, 2, 4, 8)
#: Fan-out strategies measured on every multi-shard fleet.
EXECUTORS = ("serial", "threads", "processes")

N_DISTINCT = max(int(200 * min(BENCH_SCALE, 1.0)), N_PATTERNS, 10)
PATTERN_LENGTH = 8
#: High-frequency locate patterns (short paths -> many occurrences to split).
N_LOCATE = max(N_DISTINCT // 4, 5)


def _trajectories():
    return [list(t) for t in get_bundle(DATASET).symbol_trajectories]


def build_fleet(num_shards: int, backend: str = "cinct", cache_size: int = 0):
    return build_engine(
        _trajectories(),
        EngineConfig(
            backend=backend,
            block_size=BLOCK_SIZE,
            sa_sample_rate=16,
            cache_size=cache_size,
            num_shards=num_shards,
        ),
    )


def mixed_batch(row_bound: int, paths, locate_paths, seed: int = 3):
    """A service-style heterogeneous batch, identical across fleet sizes.

    ``row_bound`` is the single-shard engine's string length — the smallest
    row space of the fleets compared — so one batch object replays verbatim
    on every engine (extraction answers are row-space-dependent and are
    excluded from the bit-identity check, everything else must merge
    identically).
    """
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(2 * len(paths)):
        path = paths[int(rng.integers(len(paths)))]
        queries.append(CountQuery(path) if rng.uniform() < 0.7 else ContainsQuery(path))
    for path in locate_paths:
        queries.append(LocateQuery(path))
    for _ in range(len(paths) // 2):
        row = int(rng.integers(0, max(row_bound - PATTERN_LENGTH, 1)))
        queries.append(ExtractQuery(row=row, length=6))
    order = rng.permutation(len(queries))
    return [queries[i] for i in order]


def measure_throughput(report_rows: list[dict]) -> dict[str, dict[int, float]]:
    """Time the mixed batch for every (fleet size, executor) combination.

    Each fleet is built **once** per shard count; executors are swapped on
    the same engine with ``configure_executor`` so every strategy answers
    from identical shard artefacts and the bit-identity assertion compares
    like with like.
    """
    trajectories = _trajectories()
    count_paths = sample_paths(trajectories, PATTERN_LENGTH, N_DISTINCT, seed=1)
    locate_paths = sample_paths(trajectories, 2, N_LOCATE, seed=2)

    seconds: dict[str, dict[int, float]] = {mode: {} for mode in EXECUTORS}
    reference_results = None
    reference_counts = None
    batch = None
    for num_shards in SHARD_COUNTS:
        engine = build_fleet(num_shards)
        if batch is None:  # SHARD_COUNTS starts at 1: the smallest row space
            batch = mixed_batch(engine.length, count_paths, locate_paths)
        modes = EXECUTORS if num_shards > 1 else ("serial",)
        for mode in modes:
            if num_shards > 1:
                engine.configure_executor(mode)
            engine.run_many(batch[: len(batch) // 8])  # warm code paths, no cache
            started = time.perf_counter()
            results = engine.run_many(batch)
            elapsed = time.perf_counter() - started
            if num_shards == 1:
                for any_mode in EXECUTORS:  # one engine: same baseline for all
                    seconds[any_mode][num_shards] = elapsed
            else:
                seconds[mode][num_shards] = elapsed
            # Extraction rows address different (concatenated) row spaces per
            # fleet size; everything else must merge bit-identically across
            # fleet sizes *and* executors.
            comparable = [r for r in results if not isinstance(r.query, ExtractQuery)]
            if reference_results is None:
                reference_results = comparable
                reference_counts = engine.count_many(count_paths)
            else:
                assert comparable == reference_results  # bit-identical merges
                assert engine.count_many(count_paths) == reference_counts
            report_rows.append(
                {
                    "shards": num_shards,
                    "executor": mode if num_shards > 1 else "-",
                    "queries": len(batch),
                    "batch (ms)": round(elapsed * 1e3, 2),
                    "speedup vs 1": round(seconds[mode][1] / elapsed, 2)
                    if num_shards > 1
                    else 1.0,
                }
            )
        close = getattr(engine, "close", None)
        if close is not None:  # reap the worker-process pool between fleets
            close()
    return seconds


def measure_load_times() -> dict[str, float]:
    """Time a full deserializing reload versus a zero-copy mmap reload.

    A 4-shard fleet is saved once; ``mmap=True`` maps the large immutable
    arrays read-only instead of copying them into fresh allocations, which is
    both faster to open and lets every shard worker process share a single
    page-cache copy of the artefacts.
    """
    engine = build_fleet(4)
    with tempfile.TemporaryDirectory(prefix="repro-bench-mmap-") as tmp:
        directory = Path(tmp) / "fleet"
        save_index(engine, directory)

        started = time.perf_counter()
        full = load_index(directory)
        load_full = time.perf_counter() - started

        started = time.perf_counter()
        mapped = load_index(directory, mmap=True)
        load_mmap = time.perf_counter() - started

        probe = sample_paths(_trajectories(), PATTERN_LENGTH, 5, seed=7)
        assert mapped.count_many(probe) == full.count_many(probe)
    return {"full_deserialize_seconds": load_full, "mmap_seconds": load_mmap}


def measure_retention() -> dict[str, float]:
    """Warm a 4-shard fleet, grow one shard, replay, report cache retention."""
    trajectories = _trajectories()
    paths = sample_paths(trajectories, PATTERN_LENGTH, N_DISTINCT, seed=4)
    retention: dict[str, float] = {}
    for num_shards in (1, 4):
        engine = build_fleet(
            num_shards, backend="partitioned-cinct", cache_size=4 * N_DISTINCT
        )
        engine.count_many(paths)  # fill
        engine.count_many(paths)  # warm
        shards = list(engine.shards) if num_shards > 1 else [engine]
        # On a sharded fleet the grown shard legitimately recomputes, so
        # retention is measured over the *untouched* shards; the single-shard
        # engine has no untouched part — its whole (wholesale-invalidated)
        # cache is the measured baseline.
        target = engine.router.shard_of(engine.n_trajectories) if num_shards > 1 else None
        # One new trajectory lands on exactly one shard.
        engine.add_batch([trajectories[0]])
        hits_before = [shard.cache_stats()["hits"] for shard in shards]
        misses_before = [shard.cache_stats()["misses"] for shard in shards]
        engine.count_many(paths)  # replay
        replay_hits = replay_misses = 0
        for shard_id, shard in enumerate(shards):
            if shard_id == target:
                continue
            stats = shard.cache_stats()
            replay_hits += stats["hits"] - hits_before[shard_id]
            replay_misses += stats["misses"] - misses_before[shard_id]
        asked = replay_hits + replay_misses
        assert asked > 0  # the replay must actually consult the measured caches
        retention[f"{num_shards}_shards"] = replay_hits / asked
    return retention


def test_shard_scaling(report) -> None:
    rows: list[dict] = []
    seconds = measure_throughput(rows)
    load_times = measure_load_times()
    retention = measure_retention()

    table = format_table(rows, title=f"{DATASET} — sharded mixed-batch throughput")
    retention_line = (
        f"cache retention under growth: 1 shard "
        f"{retention['1_shards']:.0%}, 4 shards {retention['4_shards']:.0%} "
        f"(untouched shards' replay hits)"
    )
    load_line = (
        f"4-shard fleet reload: full deserialize "
        f"{load_times['full_deserialize_seconds'] * 1e3:.1f} ms, "
        f"mmap {load_times['mmap_seconds'] * 1e3:.1f} ms"
    )
    report.add(
        "Shard scaling (fan-out/merge, executors, shard-scoped caches)",
        table + "\n" + retention_line + "\n" + load_line,
    )

    write_bench_baseline(
        "shard_scaling",
        {
            "scale": BENCH_SCALE,
            "dataset": DATASET,
            "cpu_count": os.cpu_count() or 1,
            "n_count_patterns": N_DISTINCT,
            "n_locate_patterns": N_LOCATE,
            # Historical keys: thread-executor numbers keep their old names so
            # prior baselines diff cleanly; the other executors get suffixed
            # copies of the same shape.
            "batch_seconds": {str(n): seconds["threads"][n] for n in SHARD_COUNTS},
            "speedup_vs_single": {
                str(n): seconds["threads"][1] / seconds["threads"][n]
                for n in SHARD_COUNTS
            },
            "batch_seconds_serial": {
                str(n): seconds["serial"][n] for n in SHARD_COUNTS
            },
            "batch_seconds_processes": {
                str(n): seconds["processes"][n] for n in SHARD_COUNTS
            },
            "speedup_vs_single_processes": {
                str(n): seconds["processes"][1] / seconds["processes"][n]
                for n in SHARD_COUNTS
            },
            "load_seconds": load_times,
            "cache_retention_under_growth": retention,
        },
        directory=Path(__file__).parent,
    )
    assert (Path(__file__).parent / "BENCH_shard_scaling.json").exists()

    # Shard-scoped invalidation holds at every scale: growing one shard keeps
    # (essentially all of) the other shards' warm plans; a single-shard
    # engine keeps none of them.
    assert retention["4_shards"] >= 0.9, (
        f"untouched shards retained only {retention['4_shards']:.0%} of warm hits"
    )
    assert retention["1_shards"] == 0.0

    # The wall-clock targets need hardware to overlap on: a single-core host
    # serializes the shards either way and simply records the table above.
    if assert_at_scale(BENCH_SCALE, min_cpus=4):
        speedup_threads = seconds["threads"][1] / seconds["threads"][4]
        assert speedup_threads >= 1.5, (
            f"4-shard mixed-batch thread speedup only {speedup_threads:.2f}x"
        )
        speedup_procs = seconds["processes"][1] / seconds["processes"][4]
        assert speedup_procs >= 1.5, (
            f"4-shard mixed-batch process-pool speedup only {speedup_procs:.2f}x"
        )
