"""Temporal-store benchmark: JSON timestamp persistence vs the npz store.

Before the :class:`repro.temporal.TimestampStore` subsystem, whole-engine
persistence serialized every per-trajectory timestamp list as raw JSON arrays
inside ``engine.json``.  This benchmark pins the replacement:

* **Persistence size** — the JSON byte size of the raw timestamp lists
  (exactly what the legacy version-1 ``engine.json`` embedded) vs the
  compressed ``timestamps.npz`` artefact the store writes, plus the store's
  exact in-memory bit accounting.
* **Build / decode time** — encoding a fleet's timestamps into the store and
  decoding every trajectory back out.

Results land in ``benchmarks/BENCH_temporal_store.json`` through
:func:`repro.bench.write_bench_baseline`.  The fleet scales with
``REPRO_BENCH_SCALE`` like the rest of the suite (CI smoke runs use 0.05).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from common import BENCH_SCALE
from repro.bench import format_table, write_bench_baseline
from repro.temporal import TimestampStore

#: Fleet shape at scale 1.0: paper-style city fleet sampled once per segment.
N_TRAJECTORIES = max(int(3000 * BENCH_SCALE), 30)
MIN_LENGTH, MAX_LENGTH = 10, 200
#: Fraction of trajectories without timestamps (the store must keep the gaps).
GAP_FRACTION = 0.1


def synth_fleet(seed: int = 7) -> list[list[float] | None]:
    """Per-trajectory timestamps: integral 1 Hz dwells, a few gap entries."""
    rng = np.random.default_rng(seed)
    fleet: list[list[float] | None] = []
    for _ in range(N_TRAJECTORIES):
        if rng.uniform() < GAP_FRACTION:
            fleet.append(None)
            continue
        n = int(rng.integers(MIN_LENGTH, MAX_LENGTH + 1))
        departure = float(rng.integers(0, 86_400))
        dwell = rng.integers(2, 90, size=n).astype(np.float64)
        fleet.append(list(departure + np.cumsum(dwell) - dwell[0]))
    return fleet


def json_payload_bytes(fleet: list[list[float] | None]) -> int:
    """Byte size of the legacy representation (raw lists inside engine.json)."""
    return len(json.dumps(fleet).encode("utf-8"))


def test_temporal_store_persistence(tmp_path: Path, report) -> None:
    fleet = synth_fleet()

    started = time.perf_counter()
    store = TimestampStore(fleet)
    build_seconds = time.perf_counter() - started

    started = time.perf_counter()
    decoded = store.as_lists()
    decode_seconds = time.perf_counter() - started
    assert decoded == fleet  # lossless, gaps included

    json_bytes = json_payload_bytes(fleet)
    archive = store.save(tmp_path / "timestamps.npz")
    npz_bytes = archive.stat().st_size
    reloaded = TimestampStore.load(archive)
    assert reloaded.as_lists() == fleet

    n_samples = sum(len(times) for times in fleet if times is not None)
    rows = [
        {
            "trajectories": len(fleet),
            "samples": n_samples,
            "json (KiB)": round(json_bytes / 1024, 1),
            "npz (KiB)": round(npz_bytes / 1024, 1),
            "store (KiB)": round(store.size_in_bits() / 8 / 1024, 1),
            "json/npz": round(json_bytes / max(npz_bytes, 1), 2),
            "build (ms)": round(build_seconds * 1e3, 2),
            "decode (ms)": round(decode_seconds * 1e3, 2),
        }
    ]
    table = format_table(rows, title="timestamp persistence — JSON vs npz store")
    report.add("Temporal store (JSON vs npz)", table)

    write_bench_baseline(
        "temporal_store",
        {
            "scale": BENCH_SCALE,
            "n_trajectories": len(fleet),
            "n_samples": n_samples,
            "json_bytes": json_bytes,
            "npz_bytes": npz_bytes,
            "store_bits": store.size_in_bits(),
            "bits_per_timestamp": round(store.size_in_bits() / max(n_samples, 1), 3),
            "build_seconds": build_seconds,
            "decode_seconds": decode_seconds,
        },
        directory=Path(__file__).parent,
    )

    # The compressed artefact must actually beat the raw-JSON representation.
    assert npz_bytes < json_bytes
