"""Table V — zeroth-order entropy achieved by RML vs MEL.

The paper reports RML ~30% below MEL on Singapore-2 and Roma.  We compute both
entropies on the analogues (plus the remaining datasets as extra rows) and
assert RML <= MEL everywhere (Theorem 6).
"""

from __future__ import annotations

import pytest

from common import get_bundle, get_bwt, paper_datasets
from repro.bench import format_table
from repro.compressors import mel_compress, mel_entropy
from repro.core import ETGraph, build_rml, label_bwt, labelled_entropy


def _entropies(dataset: str) -> dict[str, object]:
    bundle = get_bundle(dataset)
    bwt = get_bwt(dataset)
    graph = ETGraph(bwt.text, sigma=bwt.sigma)
    rml = build_rml(graph, strategy="bigram")
    rml_h0 = labelled_entropy(label_bwt(bwt.bwt, bwt.c_array, rml))
    mel = mel_compress(bundle.symbol_trajectories, bundle.text, bundle.sigma)
    return {
        "dataset": dataset,
        "RML (proposed)": round(rml_h0, 2),
        "MEL": round(mel_entropy(mel), 2),
    }


@pytest.mark.parametrize("dataset", ["Singapore-2", "Roma"])
def test_table5_paper_rows(benchmark, dataset, report):
    row = benchmark.pedantic(lambda: _entropies(dataset), rounds=1, iterations=1)
    report.add(f"Table V row — {dataset}", format_table([row]))
    # Theorem 6: RML entropy never exceeds MEL's.
    assert row["RML (proposed)"] <= row["MEL"] + 1e-9


def test_table5_all_datasets(benchmark, report):
    rows = benchmark.pedantic(
        lambda: [_entropies(dataset) for dataset in paper_datasets()],
        rounds=1,
        iterations=1,
    )
    report.add("Table V — entropy comparison, RML vs MEL (all analogues)", format_table(rows))
    # The paper evaluates MEL only on the ungapped road-network datasets
    # (Singapore-2 and Roma; Table IV marks the others N/A), and Theorem 6
    # compares labelings of the same string.  The extra rows are informational:
    # the MEL value there is computed on the segment stream without trip
    # separators, so the inequality is only asserted on the paper's datasets.
    for row in rows:
        if row["dataset"] in ("Singapore-2", "Roma"):
            assert row["RML (proposed)"] <= row["MEL"] + 1e-9
