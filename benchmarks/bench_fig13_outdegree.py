"""Fig. 13 — dependence on the average out-degree d-bar (RandWalk dataset).

The paper fixes sigma and |T| and grows the average out-degree from 4 to 64:
CiNCT's size grows quickly (deeper Huffman trees, bigger ET-graph) while the
baselines are insensitive to d-bar, so the advantage shrinks as the graph gets
denser.  We reproduce the sweep and assert those trends.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import get_bwt_of_randwalk, get_randwalk_index
from repro.bench import format_table, measure_search_time
from repro.fmindex import sample_patterns

SIGMA = 512
OUT_DEGREES = (4.0, 8.0, 16.0, 32.0)
LENGTH_FACTOR = 60
METHODS = ("CiNCT", "UFMI", "ICB-Huff")
PATTERN_LENGTH = 10


def _patterns(degree: float):
    rng = np.random.default_rng(int(degree * 10))
    return sample_patterns(
        get_bwt_of_randwalk(SIGMA, degree, LENGTH_FACTOR), PATTERN_LENGTH, 20, rng
    )


def _measure(degree: float, method: str) -> dict[str, object]:
    built = get_randwalk_index(SIGMA, degree, method)
    timing = measure_search_time(built.index, _patterns(degree))
    return {
        "d": degree,
        "method": method,
        "bits/symbol": round(built.bits_per_symbol(), 2),
        "search (us)": round(timing.mean_microseconds, 1),
    }


@pytest.mark.parametrize("degree", OUT_DEGREES)
@pytest.mark.parametrize("method", METHODS)
def test_fig13_point(benchmark, degree, method, report):
    built = get_randwalk_index(SIGMA, degree, method)
    patterns = _patterns(degree)
    benchmark.pedantic(
        lambda: [built.index.suffix_range(p) for p in patterns],
        rounds=2,
        iterations=1,
    )
    report.add(f"Fig. 13 point — d={degree:g}, {method}", format_table([_measure(degree, method)]))


def test_fig13_outdegree_scaling_shape(benchmark, report):
    """CiNCT's size grows with d-bar while the baselines stay roughly flat."""

    def sweep():
        return {method: [_measure(d, method) for d in OUT_DEGREES] for method in METHODS}

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [row for method_rows in series.values() for row in method_rows]
    report.add(f"Fig. 13 — out-degree dependence (RandWalk, sigma={SIGMA})", format_table(rows))

    def growth(method: str, key: str) -> float:
        values = [row[key] for row in series[method]]
        return values[-1] / values[0]

    # The sparsity of the ET-graph is the key factor for CiNCT: its size grows
    # with d-bar (deeper Huffman trees + larger ET-graph), while UFMI's size is
    # essentially independent of it — exactly the trend of Fig. 13.
    assert growth("CiNCT", "bits/symbol") > 1.2
    assert growth("UFMI", "bits/symbol") < growth("CiNCT", "bits/symbol")
    # At the sparse end (road-network regime, d ~ 4) CiNCT is smaller than the
    # uncompressed index and faster than the compressed baseline.  The paper
    # also finds CiNCT faster than UFMI; in pure Python the two are within a
    # few percent of each other and the ordering flips run to run, so that
    # comparison is asserted only up to a small tolerance.
    sparse = {method: series[method][0] for method in METHODS}
    assert sparse["CiNCT"]["bits/symbol"] < sparse["UFMI"]["bits/symbol"]
    assert sparse["CiNCT"]["search (us)"] < sparse["ICB-Huff"]["search (us)"]
    assert sparse["CiNCT"]["search (us)"] < 1.3 * sparse["UFMI"]["search (us)"]
