"""Fig. 12 — dependence on the alphabet size sigma (RandWalk dataset).

The paper fixes the average out-degree at 4, sets |T| = 800 * sigma and grows
sigma; CiNCT's search time stays (nearly) constant (Theorem 5) and its size per
symbol stays flat, whereas the baselines grow with sigma.  We reproduce the
sweep at reduced scale (|T| = length_factor * sigma) and assert the relative
growth rates.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import get_bwt_of_randwalk, get_randwalk_index
from repro.bench import format_table, measure_search_time
from repro.fmindex import sample_patterns

SIGMAS = (256, 512, 1024, 2048)
OUT_DEGREE = 4.0
LENGTH_FACTOR = 60
METHODS = ("CiNCT", "UFMI", "ICB-Huff")
PATTERN_LENGTH = 12


def _patterns(sigma: int):
    rng = np.random.default_rng(sigma)
    return sample_patterns(get_bwt_of_randwalk(sigma, OUT_DEGREE, LENGTH_FACTOR), PATTERN_LENGTH, 20, rng)


def _measure(sigma: int, method: str) -> dict[str, float]:
    built = get_randwalk_index(sigma, OUT_DEGREE, method)
    timing = measure_search_time(built.index, _patterns(sigma))
    return {
        "sigma": sigma,
        "method": method,
        "bits/symbol": round(built.bits_per_symbol(), 2),
        "search (us)": round(timing.mean_microseconds, 1),
    }


@pytest.mark.parametrize("sigma", SIGMAS)
@pytest.mark.parametrize("method", METHODS)
def test_fig12_point(benchmark, sigma, method, report):
    built = get_randwalk_index(sigma, OUT_DEGREE, method)
    patterns = _patterns(sigma)
    benchmark.pedantic(
        lambda: [built.index.suffix_range(p) for p in patterns],
        rounds=2,
        iterations=1,
    )
    report.add(f"Fig. 12 point — sigma={sigma}, {method}", format_table([_measure(sigma, method)]))


def test_fig12_sigma_scaling_shape(benchmark, report):
    """CiNCT's size and time grow much more slowly with sigma than UFMI's."""

    def sweep():
        return {method: [_measure(sigma, method) for sigma in SIGMAS] for method in METHODS}

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [row for method_rows in series.values() for row in method_rows]
    report.add("Fig. 12 — sigma dependence (RandWalk, d=4)", format_table(rows))

    def growth(method: str, key: str) -> float:
        values = [row[key] for row in series[method]]
        return values[-1] / values[0]

    # The uncompressed index grows with lg(sigma); CiNCT's size stays nearly
    # flat (its only sigma-dependence is the lg-sigma term of ET-graph edge
    # targets, which amortises over |T| = LENGTH_FACTOR * sigma symbols).
    assert growth("CiNCT", "bits/symbol") < growth("UFMI", "bits/symbol")
    assert growth("CiNCT", "bits/symbol") < 1.4
    # CiNCT search time stays flat-ish across an 8x growth of sigma
    # (Theorem 5: it depends on the out-degree, not on sigma).
    assert growth("CiNCT", "search (us)") < 1.8
    # At the largest sigma, CiNCT is smaller than the uncompressed index and
    # faster than both baselines.
    final_cinct = series["CiNCT"][-1]
    final_icb = series["ICB-Huff"][-1]
    final_ufmi = series["UFMI"][-1]
    assert final_cinct["bits/symbol"] < final_ufmi["bits/symbol"]
    assert final_cinct["search (us)"] < final_icb["search (us)"]
    assert final_cinct["search (us)"] < final_ufmi["search (us)"]
