"""Ablation — suffix-array sampling rate for locate (strict-path support).

The paper's evaluation does not need ``locate`` (suffix ranges and extraction
suffice), but the strict-path application of Section VII does.  CiNCT supports
it through classic SA sampling; this ablation sweeps the sampling rate and
charts the size/time trade-off: denser sampling costs
``n/rate * ceil(lg n)`` extra bits but shortens the LF-walk per locate.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from common import get_bwt
from repro.bench import format_table
from repro.core import CiNCT

DATASET = "Roma"
SAMPLE_RATES = (4, 16, 64)


@pytest.fixture(scope="module")
def sampled_indexes():
    bwt = get_bwt(DATASET)
    return {rate: CiNCT(bwt, block_size=63, sa_sample_rate=rate) for rate in SAMPLE_RATES}


def _mean_locate_us(index, rows) -> float:
    started = time.perf_counter()
    for row in rows:
        index.locate(int(row))
    return (time.perf_counter() - started) / len(rows) * 1e6


def test_sa_sampling_tradeoff(benchmark, sampled_indexes, report):
    bwt = get_bwt(DATASET)
    rng = np.random.default_rng(0)
    rows = rng.integers(0, bwt.length, size=50)

    def sweep():
        table = []
        for rate, index in sampled_indexes.items():
            table.append(
                {
                    "sample rate": rate,
                    "bits/symbol": round(index.bits_per_symbol(), 2),
                    "locate (us)": round(_mean_locate_us(index, rows), 1),
                }
            )
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.add(f"Ablation — SA sampling rate ({DATASET})", format_table(table))

    by_rate = {row["sample rate"]: row for row in table}
    # Correctness: every sampled index must agree with the true suffix array.
    for rate, index in sampled_indexes.items():
        for row in rows[:20]:
            assert index.locate(int(row)) == int(bwt.suffix_array[int(row)])
    # Trade-off shape: denser sampling is bigger but locates faster.
    assert by_rate[4]["bits/symbol"] > by_rate[64]["bits/symbol"]
    assert by_rate[4]["locate (us)"] < by_rate[64]["locate (us)"]
