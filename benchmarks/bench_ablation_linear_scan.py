"""Ablation — compressed self-index vs linear scan (Section VI-A2).

The paper excludes scan-based baselines from its main comparison because, in
the authors' pre-study, Boyer–Moore search over the uncompressed in-memory
array was "at least four orders of magnitude slower than CiNCT".  Pure Python
narrows every constant factor, so we do not expect 10^4, but the qualitative
claim — the scan is dramatically slower and its cost grows with |T| while the
index's does not — must hold and is asserted here.
"""

from __future__ import annotations

import time

import pytest

from common import get_bwt, get_index, get_patterns
from repro.bench import format_table
from repro.fmindex import LinearScanIndex

DATASETS = ("Roma", "Chess")


def _mean_query_us(index, patterns) -> float:
    started = time.perf_counter()
    for pattern in patterns:
        index.count(pattern)
    return (time.perf_counter() - started) / len(patterns) * 1e6


@pytest.mark.parametrize("dataset", DATASETS)
def test_linear_scan_vs_cinct(benchmark, dataset, report):
    bwt = get_bwt(dataset)
    patterns = get_patterns(dataset)
    cinct = get_index(dataset, "CiNCT")
    scan = LinearScanIndex.from_bwt_result(bwt)

    def run():
        return {
            "CiNCT (us)": round(_mean_query_us(cinct.index, patterns), 1),
            "LinearScan (us)": round(_mean_query_us(scan, patterns), 1),
        }

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    slowdown = timings["LinearScan (us)"] / max(timings["CiNCT (us)"], 1e-9)
    rows = [
        {
            "dataset": dataset,
            "|T|": bwt.length,
            **timings,
            "scan slowdown (x)": round(slowdown, 1),
        }
    ]
    report.add(f"Ablation — linear scan vs CiNCT ({dataset})", format_table(rows))

    # Counts must agree (the scan is a correctness oracle as well).
    for pattern in patterns[:10]:
        assert scan.count(pattern) == cinct.index.count(pattern)
    # The scan pays per |T| symbol, the index per pattern symbol.  At the
    # reduced benchmark scale (|T| in the tens of thousands rather than the
    # paper's tens of millions) the gap is a single order of magnitude; it
    # widens linearly with |T|, which is what the paper's "four orders of
    # magnitude" refers to at 53M symbols.
    assert slowdown > 2
