"""Fig. 16 — index construction time and its breakdown.

The paper breaks CiNCT construction into BWT, wavelet-tree build and the
ET-graph-specific extra work (graph + RML + labelling + correction terms) and
shows that the extra work is not a serious overhead: CiNCT's total build time
is comparable to ICB-Huff and shorter than the large-alphabet variants.
"""

from __future__ import annotations

import time

import pytest

from common import FIG10_VARIANTS, get_bundle, get_bwt
from repro.bench import build_index, format_table
from repro.core import CiNCT

DATASET = "Singapore"


@pytest.mark.parametrize("variant", FIG10_VARIANTS)
def test_fig16_construction_time(benchmark, variant, report):
    bwt = get_bwt(DATASET)

    def build():
        return build_index(variant, bwt, block_size=63)

    built = benchmark.pedantic(build, rounds=1, iterations=1)
    report.add(
        f"Fig. 16 — construction time ({variant})",
        format_table(
            [{"method": variant, "WT/index build (s)": round(built.build_seconds, 3)}]
        ),
    )


def test_fig16_cinct_breakdown(benchmark, report):
    """CiNCT's breakdown: BWT / ET-graph + labelling / wavelet-tree build."""
    bundle = get_bundle(DATASET)

    def build():
        return CiNCT.from_text(bundle.text, sigma=bundle.sigma, block_size=63)

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    breakdown = index.construction
    rows = [
        {
            "stage": "BWT",
            "seconds": round(breakdown.bwt_seconds, 3),
        },
        {
            "stage": "ET-graph build (graph + RML + labelling + Z)",
            "seconds": round(breakdown.et_graph_seconds + breakdown.labeling_seconds, 3),
        },
        {
            "stage": "WT build",
            "seconds": round(breakdown.wavelet_tree_seconds, 3),
        },
        {
            "stage": "total",
            "seconds": round(breakdown.total_seconds, 3),
        },
    ]
    report.add("Fig. 16 — CiNCT construction breakdown (Singapore analogue)", format_table(rows))

    # The ET-graph machinery must not dominate construction (Section VI-G).
    extra = breakdown.et_graph_seconds + breakdown.labeling_seconds
    assert extra < breakdown.total_seconds * 0.75


def test_fig16_cinct_vs_icb_huff_build(benchmark, report):
    """CiNCT's construction time is comparable to ICB-Huff's (within ~2.5x)."""
    bwt = get_bwt(DATASET)

    def build_both():
        start = time.perf_counter()
        CiNCT(bwt, block_size=63)
        cinct_seconds = time.perf_counter() - start
        icb = build_index("ICB-Huff", bwt, block_size=63)
        return cinct_seconds, icb.build_seconds

    cinct_seconds, icb_seconds = benchmark.pedantic(build_both, rounds=1, iterations=1)
    report.add(
        "Fig. 16 — CiNCT vs ICB-Huff construction",
        format_table(
            [
                {"method": "CiNCT", "build (s)": round(cinct_seconds, 3)},
                {"method": "ICB-Huff", "build (s)": round(icb_seconds, 3)},
            ]
        ),
    )
    assert cinct_seconds < icb_seconds * 2.5
