"""Ablation — RRR vs plain bit vectors inside CiNCT.

Not a paper figure, but a design-choice check DESIGN.md calls out: the RRR
bit vectors are what turn the Huffman-shaped wavelet tree into a compressed
structure.  Replacing them with plain bitmaps must increase the index size on
the low-entropy labelled BWT while keeping all answers identical.
"""

from __future__ import annotations

import pytest

from common import get_bwt, get_patterns
from repro.bench import format_table, measure_search_time
from repro.core import CiNCT

DATASET = "Singapore-2"


@pytest.mark.parametrize("backend", ["rrr", "plain"])
def test_ablation_backend_query_time(benchmark, backend, report):
    bwt = get_bwt(DATASET)
    index = CiNCT(bwt, block_size=63, bitvector_backend=backend)  # type: ignore[arg-type]
    patterns = get_patterns(DATASET)

    benchmark.pedantic(
        lambda: [index.suffix_range(p) for p in patterns],
        rounds=2,
        iterations=1,
    )
    timing = measure_search_time(index, patterns)
    report.add(
        f"Ablation — CiNCT bit-vector backend = {backend}",
        format_table(
            [
                {
                    "backend": backend,
                    "bits/symbol": round(index.bits_per_symbol(), 2),
                    "search (us)": round(timing.mean_microseconds, 1),
                }
            ]
        ),
    )


def test_ablation_rrr_compresses_and_answers_match(benchmark, report):
    bwt = get_bwt(DATASET)

    def build_both():
        return (
            CiNCT(bwt, block_size=63, bitvector_backend="rrr"),
            CiNCT(bwt, block_size=63, bitvector_backend="plain"),
        )

    rrr_index, plain_index = benchmark.pedantic(build_both, rounds=1, iterations=1)
    patterns = get_patterns(DATASET)
    for pattern in patterns:
        assert rrr_index.suffix_range(pattern) == plain_index.suffix_range(pattern)

    rows = [
        {"backend": "rrr", "wavelet tree (bits/symbol)": round(
            rrr_index.size_in_bits(include_et_graph=False) / rrr_index.length, 2)},
        {"backend": "plain", "wavelet tree (bits/symbol)": round(
            plain_index.size_in_bits(include_et_graph=False) / plain_index.length, 2)},
    ]
    report.add("Ablation — RRR vs plain bit vectors (wavelet tree only)", format_table(rows))
    assert rows[0]["wavelet tree (bits/symbol)"] < rows[1]["wavelet tree (bits/symbol)"]
