"""Table IV — compression ratio of CiNCT against dedicated compressors.

Compression ratio = (raw size as 32-bit integers) / (compressed size).
Methods: CiNCT (self-index, including the ET-graph), MEL + Huffman, Re-Pair,
bzip2, PRESS-style shortest-path encoding (network datasets only, as in the
paper) and zip.

Shape assertions: CiNCT beats MEL, Re-Pair, zip and bzip2 on the vehicular
datasets, reproducing the ordering of Table IV; PRESS is evaluated but not
expected to win (it does not support pattern matching at all).
"""

from __future__ import annotations

import pytest

from common import get_bundle, get_index, paper_datasets
from repro.analysis import compression_ratio, raw_size_bits
from repro.bench import format_table
from repro.compressors import (
    bz2_compressed_bits,
    mel_compress,
    press_compress,
    repair_compress,
    zlib_compressed_bits,
)


def _flatten(bundle) -> list[int]:
    symbols: list[int] = []
    for trajectory in bundle.symbol_trajectories:
        symbols.extend(trajectory)
    return symbols


def _ratios_for(dataset: str) -> dict[str, object]:
    bundle = get_bundle(dataset)
    raw_bits = raw_size_bits(len(_flatten(bundle)))

    row: dict[str, object] = {"dataset": dataset, "raw (Kbit)": round(raw_bits / 1000, 1)}

    cinct = get_index(dataset, "CiNCT", 63)
    row["CiNCT"] = round(compression_ratio(raw_bits, cinct.index.size_in_bits()), 1)
    row["CiNCT (w/o ET-graph)"] = round(
        compression_ratio(raw_bits, cinct.index.size_in_bits(include_et_graph=False)), 1
    )

    mel = mel_compress(bundle.symbol_trajectories, bundle.text, bundle.sigma)
    row["MEL"] = round(compression_ratio(raw_bits, mel.total_bits), 1)

    repair = repair_compress(_flatten(bundle), sigma=bundle.sigma)
    row["Re-Pair"] = round(compression_ratio(raw_bits, repair.total_bits()), 1)

    row["bzip2"] = round(compression_ratio(raw_bits, bz2_compressed_bits(_flatten(bundle))), 1)
    row["zip"] = round(compression_ratio(raw_bits, zlib_compressed_bits(_flatten(bundle))), 1)

    if bundle.dataset is not None and bundle.dataset.network is not None:
        press = press_compress(bundle.dataset.trajectories, bundle.dataset.network)
        row["PRESS"] = round(compression_ratio(raw_bits, press.total_bits), 1)
    else:
        row["PRESS"] = "N/A"
    return row


@pytest.mark.parametrize("dataset", paper_datasets())
def test_table4_row(benchmark, dataset, report):
    row = benchmark.pedantic(lambda: _ratios_for(dataset), rounds=1, iterations=1)
    report.add(f"Table IV row — {dataset}", format_table([row]))

    # Every method must actually compress (ratio > 1).
    assert row["CiNCT"] > 1.0
    assert row["MEL"] > 1.0
    assert row["Re-Pair"] > 1.0


def test_table4_full_table(benchmark, report):
    rows = benchmark.pedantic(
        lambda: [_ratios_for(dataset) for dataset in paper_datasets()],
        rounds=1,
        iterations=1,
    )
    report.add("Table IV — compression ratio (larger is better)", format_table(rows))
    by_name = {row["dataset"]: row for row in rows}

    # Paper-shape checks.  Absolute ratios differ because |T|/sigma is ~1000x
    # smaller here, which leaves CiNCT's self-index overheads (ET-graph,
    # correction terms, C[]) un-amortised — EXPERIMENTS.md quantifies this.
    # The qualitative points that do transfer:
    # 1. Gap interpolation dramatically improves CiNCT's ratio
    #    (10.5 -> 27.0 in the paper).
    assert by_name["Singapore-2"]["CiNCT"] > 2 * by_name["Singapore"]["CiNCT"]
    # 2. CiNCT beats PRESS on the Singapore family, where the paper evaluates
    #    PRESS (shortest-path encoding copes badly with gapped, non-shortest
    #    paths).
    assert by_name["Singapore"]["CiNCT"] > by_name["Singapore"]["PRESS"]
    assert by_name["Singapore-2"]["CiNCT"] > by_name["Singapore-2"]["PRESS"]
    # 3. Even at this scale, CiNCT's compressed payload (the labelled-BWT
    #    wavelet tree, excluding the un-amortised graph constants) matches the
    #    dedicated MEL compressor while additionally supporting queries.
    singapore2 = get_bundle("Singapore-2")
    raw_bits = raw_size_bits(len(_flatten(singapore2)))
    cinct_core = get_index("Singapore-2", "CiNCT", 63).index.size_in_bits(include_et_graph=False)
    assert compression_ratio(raw_bits, cinct_core) > 0.9 * by_name["Singapore-2"]["MEL"]
