"""Compare CiNCT's footprint and query speed against the baseline indexes and
compressors on a realistic dataset analogue.

This reproduces, at example scale, the story of the paper's Fig. 10 and
Table IV on the Singapore-2 analogue (gap-interpolated taxi trajectories):

* CiNCT vs the FM-index family (UFMI, ICB-WM, ICB-Huff, FM-GMR, FM-AP-HYB) on
  index size and suffix-range query time;
* CiNCT vs pure compressors (MEL + Huffman, Re-Pair, zip, bzip2) on
  compression ratio — remembering that only the indexes can answer queries
  without decompression.

Run with:  python examples/compression_comparison.py   (takes ~1 minute)
"""

from __future__ import annotations

from repro.analysis import compression_ratio, raw_size_bits
from repro.bench import (
    build_index,
    bwt_of_bundle,
    format_table,
    measure_search_time,
    sample_query_workload,
)
from repro.compressors import (
    bz2_compressed_bits,
    mel_compress,
    repair_compress,
    zlib_compressed_bits,
)
from repro.datasets import singapore2_like

VARIANTS = ("CiNCT", "UFMI", "ICB-WM", "ICB-Huff", "FM-GMR", "FM-AP-HYB")


def main() -> None:
    bundle = singapore2_like(scale=0.5)
    print(f"dataset: {bundle.name} analogue, |T| = {bundle.length}, sigma = {bundle.sigma}")
    bwt = bwt_of_bundle(bundle)
    patterns = sample_query_workload(bwt, pattern_length=12, n_patterns=30, seed=0)

    # ---------------- index family comparison (Fig. 10 style) -------------- #
    rows = []
    for variant in VARIANTS:
        built = build_index(variant, bwt, block_size=63)
        timing = measure_search_time(built.index, patterns)
        rows.append(
            {
                "method": variant,
                "bits/symbol": round(built.bits_per_symbol(), 2),
                "search (us/query)": round(timing.mean_microseconds, 1),
                "supports queries": "yes",
            }
        )
    print()
    print(format_table(rows, title="Self-indexes: size vs suffix-range query time"))

    # ---------------- compressor comparison (Table IV style) --------------- #
    flat = [symbol for trajectory in bundle.symbol_trajectories for symbol in trajectory]
    raw_bits = raw_size_bits(len(flat))
    cinct = build_index("CiNCT", bwt, block_size=63).index
    compressor_rows = [
        {
            "method": "CiNCT (self-index)",
            "ratio": round(compression_ratio(raw_bits, cinct.size_in_bits()), 1),
            "supports queries": "yes",
        },
        {
            "method": "MEL + Huffman",
            "ratio": round(
                compression_ratio(
                    raw_bits,
                    mel_compress(bundle.symbol_trajectories, bundle.text, bundle.sigma).total_bits,
                ),
                1,
            ),
            "supports queries": "no",
        },
        {
            "method": "Re-Pair",
            "ratio": round(
                compression_ratio(raw_bits, repair_compress(flat, sigma=bundle.sigma).total_bits()), 1
            ),
            "supports queries": "no",
        },
        {
            "method": "bzip2",
            "ratio": round(compression_ratio(raw_bits, bz2_compressed_bits(flat)), 1),
            "supports queries": "no",
        },
        {
            "method": "zip",
            "ratio": round(compression_ratio(raw_bits, zlib_compressed_bits(flat)), 1),
            "supports queries": "no",
        },
    ]
    print()
    print(format_table(compressor_rows, title="Compression ratio vs raw 32-bit storage"))
    print()
    print(
        "Note: the pure compressors cannot answer path queries without\n"
        "decompressing; CiNCT answers them in microseconds directly on the\n"
        "compressed representation."
    )


if __name__ == "__main__":
    main()
