"""Growing data and universal on-disk persistence through the engine facade.

CiNCT is a static index; the paper (Section III-A) handles growing data by
indexing new batches separately and periodically reconstructing.  This example
shows that workflow end to end on the :class:`repro.engine.TrajectoryEngine`
facade:

1. stream three daily batches of *timestamped* trips into an engine running
   the ``partitioned-cinct`` backend (one immutable CiNCT partition per
   batch); the engine keeps every timestamp in its compressed
   :class:`~repro.temporal.TimestampStore`,
2. query across the partitions with raw edge paths — including a
   time-windowed strict-path query, which works even though the engine was
   built *without* ``sa_sample_rate`` (the partitions fall back to their
   retained suffix arrays),
3. persist the grown engine with :meth:`TrajectoryEngine.save` and reload it
   with :meth:`TrajectoryEngine.load` — the same two calls persist *any*
   registered backend; timestamps land in a ``timestamps.npz`` artefact next
   to ``engine.json``, never as raw JSON arrays,
4. export the accumulated trips as JSON Lines and read them back.

Run with:  python examples/growing_fleet_and_persistence.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    Trajectory,
    TrajectoryDataset,
    grid_network,
    load_dataset_jsonl,
    save_dataset_jsonl,
)
from repro.engine import EngineConfig, TrajectoryEngine
from repro.trajectories import straight_biased_walks


def daily_batches(n_days: int = 3, trips_per_day: int = 25) -> list[list[Trajectory]]:
    """Generate a few days of timestamped trips on the same road network."""
    network = grid_network(7, 7)
    batches: list[list[Trajectory]] = []
    for day in range(n_days):
        rng = np.random.default_rng(100 + day)
        walks = straight_biased_walks(
            network, n_trajectories=trips_per_day, min_length=6, max_length=18, rng=rng
        )
        for trajectory in walks:
            departure = float(day * 86_400 + rng.integers(0, 43_200))
            dwell = rng.integers(10, 120, size=len(trajectory.edges)).astype(float)
            trajectory.timestamps = list(departure + np.cumsum(dwell) - dwell[0])
        batches.append(walks)
    return batches


def main() -> None:
    batches = daily_batches()
    probe_path = list(batches[0][0].edges[:3])

    # ---- growing index ---------------------------------------------------- #
    # An empty partitioned engine grows one partition per arriving batch.
    growing = TrajectoryEngine.build(
        [], EngineConfig(backend="partitioned-cinct", block_size=31, max_partitions=5)
    )
    for day, batch in enumerate(batches):
        growing.add_batch(batch)
        print(
            f"day {day}: {growing.n_partitions} partition(s), "
            f"{growing.n_trajectories} trips, "
            f"{growing.bits_per_symbol():.2f} bits/symbol, "
            f"probe path count = {growing.count(probe_path)}"
        )

    before = growing.count(probe_path)
    growing.consolidate()
    print(f"after consolidation: {growing.n_partitions} partition, "
          f"probe path count = {growing.count(probe_path)} (unchanged: {growing.count(probe_path) == before})")

    # ---- strict-path on the unsampled engine ------------------------------ #
    # No sa_sample_rate was configured: locate/strict-path fall back to the
    # partitions' retained suffix arrays instead of raising.
    day0_end = 86_400.0
    day0_matches = growing.strict_path(probe_path, 0.0, day0_end)
    store = growing.timestamp_store
    print(f"strict path {probe_path} on day 0: {len(day0_matches)} traversal(s); "
          f"timestamp store holds {store.n_timestamped}/{store.n_trajectories} "
          f"trajectories in {growing.temporal_size_in_bits()} bits")
    print()

    with tempfile.TemporaryDirectory() as tmp:
        # ---- universal persistence ---------------------------------------- #
        # save()/load() work for every backend; here the partitioned fleet...
        fleet_dir = Path(tmp) / "fleet-partitioned"
        growing.save(fleet_dir)
        on_disk = sum(f.stat().st_size for f in fleet_dir.iterdir())
        npz_bytes = (fleet_dir / "timestamps.npz").stat().st_size
        print(f"saved partitioned engine to {fleet_dir} ({on_disk / 1024:.1f} KiB on disk, "
              f"timestamps.npz {npz_bytes / 1024:.1f} KiB)")
        reloaded = TrajectoryEngine.load(fleet_dir)
        print(f"reloaded engine answers the probe query: {reloaded.count(probe_path)} "
              f"(live engine says {growing.count(probe_path)})")
        print(f"reloaded strict-path matches survive byte-identically: "
              f"{reloaded.strict_path(probe_path, 0.0, day0_end) == day0_matches}")

        # ...and the exact same two calls persist a monolithic CiNCT engine.
        all_trips = [trip for batch in batches for trip in batch]
        monolith = TrajectoryEngine.build(all_trips, EngineConfig(backend="cinct", block_size=31))
        cinct_dir = Path(tmp) / "fleet-cinct"
        monolith.save(cinct_dir)
        print(f"monolithic CiNCT round-trip: "
              f"{TrajectoryEngine.load(cinct_dir).count(probe_path)} matches")
        print()

        # ---- dataset export / import -------------------------------------- #
        dataset = TrajectoryDataset(name="fleet-export", trajectories=all_trips)
        export_path = Path(tmp) / "fleet.jsonl"
        save_dataset_jsonl(dataset, export_path)
        reimported = load_dataset_jsonl(export_path)
        print(f"exported {len(dataset)} trips to JSONL and re-imported {len(reimported)} trips")


if __name__ == "__main__":
    main()
