"""Growing data and on-disk persistence.

CiNCT is a static index; the paper (Section III-A) handles growing data by
indexing new batches separately and periodically reconstructing.  This example
shows that workflow end to end together with the persistence layer:

1. stream three daily batches of trips into a :class:`PartitionedCiNCT`,
2. query across the partitions, then consolidate into a single index,
3. persist the consolidated index with :func:`repro.save_cinct` and reload it
   with :func:`repro.load_cinct`,
4. export the accumulated trips as JSON Lines and read them back.

Run with:  python examples/growing_fleet_and_persistence.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    CiNCT,
    PartitionedCiNCT,
    Trajectory,
    TrajectoryDataset,
    grid_network,
    load_cinct,
    load_dataset_jsonl,
    save_cinct,
    save_dataset_jsonl,
)
from repro.strings import burrows_wheeler_transform
from repro.trajectories import straight_biased_walks


def daily_batches(n_days: int = 3, trips_per_day: int = 25) -> list[list[list[object]]]:
    """Generate a few days of trips on the same road network."""
    network = grid_network(7, 7)
    batches: list[list[list[object]]] = []
    for day in range(n_days):
        rng = np.random.default_rng(100 + day)
        walks = straight_biased_walks(
            network, n_trajectories=trips_per_day, min_length=6, max_length=18, rng=rng
        )
        batches.append([list(t.edges) for t in walks])
    return batches


def main() -> None:
    batches = daily_batches()
    probe_path = batches[0][0][:3]

    # ---- growing index ---------------------------------------------------- #
    growing = PartitionedCiNCT(block_size=31, max_partitions=5)
    for day, batch in enumerate(batches):
        growing.add_batch(batch)
        print(
            f"day {day}: {growing.n_partitions} partition(s), "
            f"{growing.n_trajectories} trips, "
            f"{growing.bits_per_symbol():.2f} bits/symbol, "
            f"probe path count = {growing.count(probe_path)}"
        )

    before = growing.count(probe_path)
    growing.consolidate()
    print(f"after consolidation: {growing.n_partitions} partition, "
          f"probe path count = {growing.count(probe_path)} (unchanged: {growing.count(probe_path) == before})")
    print()

    # ---- persistence ------------------------------------------------------ #
    all_trips = [trip for batch in batches for trip in batch]
    index, trajectory_string = CiNCT.from_trajectories(all_trips, block_size=31)
    bwt_result = burrows_wheeler_transform(trajectory_string.text, sigma=trajectory_string.sigma)

    with tempfile.TemporaryDirectory() as tmp:
        index_dir = Path(tmp) / "fleet-index"
        save_cinct(index, bwt_result, index_dir, trajectory_string=trajectory_string)
        on_disk = sum(f.stat().st_size for f in index_dir.iterdir())
        print(f"saved index to {index_dir} ({on_disk / 1024:.1f} KiB on disk)")

        reloaded = load_cinct(index_dir)
        pattern = reloaded.encode_pattern(probe_path)
        print(f"reloaded index answers the probe query: {reloaded.index.count(pattern)} "
              f"(fresh index says {index.count(trajectory_string.encode_pattern(probe_path))})")

        # ---- dataset export / import -------------------------------------- #
        dataset = TrajectoryDataset(
            name="fleet-export",
            trajectories=[Trajectory(edges=trip) for trip in all_trips],
        )
        export_path = Path(tmp) / "fleet.jsonl"
        save_dataset_jsonl(dataset, export_path)
        reimported = load_dataset_jsonl(export_path)
        print(f"exported {len(dataset)} trips to JSONL and re-imported {len(reimported)} trips")


if __name__ == "__main__":
    main()
