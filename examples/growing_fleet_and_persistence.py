"""Growing data and universal on-disk persistence through the engine facade.

CiNCT is a static index; the paper (Section III-A) handles growing data by
indexing new batches separately and periodically reconstructing.  This example
shows that workflow end to end on the :class:`repro.engine.TrajectoryEngine`
facade:

1. stream three daily batches of trips into an engine running the
   ``partitioned-cinct`` backend (one immutable CiNCT partition per batch),
2. query across the partitions with raw edge paths,
3. persist the grown engine with :meth:`TrajectoryEngine.save` and reload it
   with :meth:`TrajectoryEngine.load` — the same two calls persist *any*
   registered backend,
4. export the accumulated trips as JSON Lines and read them back.

Run with:  python examples/growing_fleet_and_persistence.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    Trajectory,
    TrajectoryDataset,
    grid_network,
    load_dataset_jsonl,
    save_dataset_jsonl,
)
from repro.engine import EngineConfig, TrajectoryEngine
from repro.trajectories import straight_biased_walks


def daily_batches(n_days: int = 3, trips_per_day: int = 25) -> list[list[list[object]]]:
    """Generate a few days of trips on the same road network."""
    network = grid_network(7, 7)
    batches: list[list[list[object]]] = []
    for day in range(n_days):
        rng = np.random.default_rng(100 + day)
        walks = straight_biased_walks(
            network, n_trajectories=trips_per_day, min_length=6, max_length=18, rng=rng
        )
        batches.append([list(t.edges) for t in walks])
    return batches


def main() -> None:
    batches = daily_batches()
    probe_path = batches[0][0][:3]

    # ---- growing index ---------------------------------------------------- #
    # An empty partitioned engine grows one partition per arriving batch.
    growing = TrajectoryEngine.build(
        [], EngineConfig(backend="partitioned-cinct", block_size=31, max_partitions=5)
    )
    for day, batch in enumerate(batches):
        growing.add_batch(batch)
        print(
            f"day {day}: {growing.n_partitions} partition(s), "
            f"{growing.n_trajectories} trips, "
            f"{growing.bits_per_symbol():.2f} bits/symbol, "
            f"probe path count = {growing.count(probe_path)}"
        )

    before = growing.count(probe_path)
    growing.consolidate()
    print(f"after consolidation: {growing.n_partitions} partition, "
          f"probe path count = {growing.count(probe_path)} (unchanged: {growing.count(probe_path) == before})")
    print()

    with tempfile.TemporaryDirectory() as tmp:
        # ---- universal persistence ---------------------------------------- #
        # save()/load() work for every backend; here the partitioned fleet...
        fleet_dir = Path(tmp) / "fleet-partitioned"
        growing.save(fleet_dir)
        on_disk = sum(f.stat().st_size for f in fleet_dir.iterdir())
        print(f"saved partitioned engine to {fleet_dir} ({on_disk / 1024:.1f} KiB on disk)")
        reloaded = TrajectoryEngine.load(fleet_dir)
        print(f"reloaded engine answers the probe query: {reloaded.count(probe_path)} "
              f"(live engine says {growing.count(probe_path)})")

        # ...and the exact same two calls persist a monolithic CiNCT engine.
        all_trips = [trip for batch in batches for trip in batch]
        monolith = TrajectoryEngine.build(all_trips, EngineConfig(backend="cinct", block_size=31))
        cinct_dir = Path(tmp) / "fleet-cinct"
        monolith.save(cinct_dir)
        print(f"monolithic CiNCT round-trip: "
              f"{TrajectoryEngine.load(cinct_dir).count(probe_path)} matches")
        print()

        # ---- dataset export / import -------------------------------------- #
        dataset = TrajectoryDataset(
            name="fleet-export",
            trajectories=[Trajectory(edges=trip) for trip in all_trips],
        )
        export_path = Path(tmp) / "fleet.jsonl"
        save_dataset_jsonl(dataset, export_path)
        reimported = load_dataset_jsonl(export_path)
        print(f"exported {len(dataset)} trips to JSONL and re-imported {len(reimported)} trips")


if __name__ == "__main__":
    main()
