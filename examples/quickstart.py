"""Quickstart: one engine API over every index backend.

This walks through the paper's running example (Fig. 1a) — four
network-constrained trajectories over six road segments A-F — using the
:class:`repro.engine.TrajectoryEngine` facade:

* build an index from raw edge sequences (no manual pattern encoding),
* count / locate paths, including paths that never occur,
* extract a sub-path from the compressed representation (Algorithm 4),
* attach per-segment timestamps and run a time-windowed strict-path query
  (the timestamps live in the engine's compressed TimestampStore),
* run the same queries against every registered backend via the registry.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Trajectory
from repro.engine import (
    CountQuery,
    EngineConfig,
    ExtractQuery,
    LocateQuery,
    TrajectoryEngine,
    available_backends,
)

# The four example NCTs of Fig. 1a, each a list of road-segment IDs in travel
# order.  Segment IDs can be any hashable values (strings here; the realistic
# examples use (tail, head) node pairs).
TRAJECTORIES = [
    ["A", "B", "E", "F"],
    ["A", "B", "C"],
    ["B", "C"],
    ["A", "D"],
]


def main() -> None:
    # One call builds the whole pipeline: trajectory string -> BWT -> ET-graph
    # -> RML labelling -> PseudoRank correction terms -> compressed wavelet
    # tree.  The engine owns the alphabet, so queries are raw edge sequences.
    engine = TrajectoryEngine.build(
        TRAJECTORIES, EngineConfig(backend="cinct", block_size=15, sa_sample_rate=4)
    )

    print("Indexed", engine.n_trajectories, "trajectories,",
          engine.length, "symbols,",
          f"{engine.bits_per_symbol():.1f} bits/symbol (tiny data => overhead-dominated)")
    print()

    # --- Pattern matching (suffix-range queries) -------------------------- #
    for path in (["A", "B"], ["B", "C"], ["A", "B", "E", "F"], ["B", "A"]):
        matches = engine.locate(path)
        print(f"path {'->'.join(path):<12} count={engine.count(path)}  "
              f"trajectories={sorted({m.trajectory_id for m in matches})}")
    print()

    # --- Sub-path extraction ---------------------------------------------- #
    # Row 0 of the BWT corresponds to the rotation starting with '#', i.e. the
    # end of the trajectory string; extracting 4 symbols from it recovers the
    # last stored trajectory fragments (see Section IV-C of the paper).
    print("extract(0, 4) recovers the symbols", engine.extract(0, 4))
    print()

    # --- Strict-path queries with timestamps ------------------------------ #
    # Attaching timestamps turns locate into a strict path query; note the
    # engine here has NO sa_sample_rate — locate falls back to the retained
    # suffix array, and the timestamps are held delta-encoded in the
    # engine's TimestampStore (persisted as timestamps.npz by save()).
    timed = TrajectoryEngine.build(
        [
            Trajectory(edges=edges, timestamps=[60.0 * k * (i + 1) for k in range(len(edges))])
            for i, edges in enumerate(TRAJECTORIES)
        ],
        EngineConfig(backend="cinct", block_size=15),
    )
    window = timed.strict_path(["A", "B"], t_start=0.0, t_end=90.0)
    print(f"strict path A->B in [0, 90]s: trajectories "
          f"{sorted({m.trajectory_id for m in window})} "
          f"(timestamp store: {timed.temporal_size_in_bits()} bits)")
    print()

    # --- Batched, typed queries ------------------------------------------- #
    # run_many drives the staged pipeline (normalize -> optimize -> execute):
    # the batch is grouped by query type, duplicates are answered once, and
    # repeats land in the engine's epoch-invalidated result cache.
    results = engine.run_many(
        [CountQuery(["A", "B"]), LocateQuery(["B", "C"]), ExtractQuery(row=0, length=4)]
    )
    for result in results:
        print(type(result).__name__, "->", result)
    engine.run_many(
        [CountQuery(["A", "B"]), LocateQuery(["B", "C"]), ExtractQuery(row=0, length=4)]
    )
    stats = engine.cache_stats()
    print(f"result cache after the repeat: hits={stats['hits']} "
          f"misses={stats['misses']} (epoch {engine.epoch})")
    print()

    # --- The same API over every registered backend ------------------------ #
    probe = ["A", "B"]
    for name in available_backends():
        backend_engine = TrajectoryEngine.build(
            TRAJECTORIES, EngineConfig(backend=name, block_size=15, sa_sample_rate=4)
        )
        print(f"{backend_engine.spec.display_name:<11} count({'->'.join(probe)}) = "
              f"{backend_engine.count(probe)}  "
              f"[{backend_engine.size_in_bits()} bits]")


if __name__ == "__main__":
    main()
