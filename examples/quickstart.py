"""Quickstart: build a CiNCT index over a handful of trajectories and query it.

This walks through the paper's running example (Fig. 1a): four
network-constrained trajectories over six road segments A-F.  It shows the
three core operations of the index:

* counting / locating a path with a suffix-range query (Algorithm 3),
* checking paths that never occur,
* extracting a sub-path from an arbitrary position of the compressed
  representation (Algorithm 4).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import CiNCT

# The four example NCTs of Fig. 1a, each a list of road-segment IDs in travel
# order.  Segment IDs can be any hashable values (strings here; the realistic
# examples use (tail, head) node pairs).
TRAJECTORIES = [
    ["A", "B", "E", "F"],
    ["A", "B", "C"],
    ["B", "C"],
    ["A", "D"],
]


def main() -> None:
    # One call builds the whole pipeline: trajectory string -> BWT -> ET-graph
    # -> RML labelling -> PseudoRank correction terms -> compressed wavelet tree.
    index, trajectory_string = CiNCT.from_trajectories(TRAJECTORIES, block_size=15)

    print("Indexed", trajectory_string.n_trajectories, "trajectories,",
          trajectory_string.length, "symbols,",
          f"{index.bits_per_symbol():.1f} bits/symbol (tiny data => overhead-dominated)")
    print()

    # --- Pattern matching (suffix-range queries) -------------------------- #
    for path in (["A", "B"], ["B", "C"], ["A", "B", "E", "F"], ["B", "A"]):
        pattern = trajectory_string.encode_pattern(path)
        suffix_range = index.suffix_range(pattern)
        print(f"path {'->'.join(path):<12} count={index.count(pattern)}  suffix range={suffix_range}")
    print()

    # --- Sub-path extraction ---------------------------------------------- #
    # Row 0 of the BWT corresponds to the rotation starting with '#', i.e. the
    # end of the trajectory string; extracting 4 symbols from it recovers the
    # last stored trajectory fragments (see Section IV-C of the paper).
    extracted = index.extract(0, 4)
    special = {0: "#", 1: "$"}
    decoded = [
        trajectory_string.alphabet.decode(symbol) if symbol >= 2 else special[symbol]
        for symbol in extracted
    ]
    print("extract(0, 4) recovers the symbols", decoded)

    # The entire trajectory string can be reconstructed from the index alone.
    full = index.extract_full_text()
    print("full extraction length:", len(full), "== |T|:", index.length)

    # --- A peek inside ----------------------------------------------------- #
    print()
    print("ET-graph edges:", index.et_graph.n_edges,
          "| max out-degree:", index.et_graph.max_out_degree(),
          "| labelled-BWT alphabet size:", index.rml.max_label)


if __name__ == "__main__":
    main()
