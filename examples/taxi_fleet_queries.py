"""Taxi-fleet scenario: index a synthetic city's taxi trajectories and run
strict path queries ("which taxis drove along this corridor, and when?").

This is the workload the paper's introduction motivates: a large collection of
vehicle trajectories on a road network, queried by spatial path and time
window.  The example

1. generates a city grid and a fleet of turn-biased taxi trips with
   timestamps,
2. builds the spatio-temporal :class:`repro.queries.StrictPathIndex`
   (CiNCT for the spatial part + a delta-coded temporal index),
3. answers pure-spatial and spatio-temporal strict path queries, and
4. reports the index size against the raw data size.

Run with:  python examples/taxi_fleet_queries.py
"""

from __future__ import annotations

import numpy as np

from repro import TrajectoryDataset, grid_network
from repro.analysis import raw_size_bits
from repro.queries import StrictPathIndex
from repro.trajectories import straight_biased_walks


def main() -> None:
    rng = np.random.default_rng(2024)
    network = grid_network(14, 14, spacing=120.0)
    print(f"city grid: {network.n_nodes} intersections, {network.n_edges} road segments")

    fleet = straight_biased_walks(
        network,
        n_trajectories=600,
        min_length=12,
        max_length=45,
        rng=rng,
        straight_bias=2.5,
        seconds_per_edge=25.0,
    )
    dataset = TrajectoryDataset(
        name="taxi-fleet", trajectories=fleet, network=network,
        description="synthetic taxi fleet with per-segment timestamps",
    )
    print(f"fleet: {len(dataset)} trips, {dataset.total_edges} segment observations")

    index = StrictPathIndex(dataset, block_size=63, sa_sample_rate=16)
    raw_bits = raw_size_bits(dataset.total_edges)
    print(
        f"index size: {index.size_in_bits() / 8 / 1024:.1f} KiB "
        f"({raw_bits / index.size_in_bits():.1f}x smaller than raw 32-bit storage)"
    )
    print()

    # Pick a corridor that definitely carries traffic: the first few segments
    # of a busy trip.
    corridor = fleet[0].edges[2:6]
    corridor_text = " -> ".join(str(segment) for segment in corridor)
    print("query corridor:", corridor_text)

    # --- purely spatial strict path query ---------------------------------- #
    traversals = index.query(corridor)
    taxis = sorted({match.trajectory_id for match in traversals})
    print(f"  {len(traversals)} traversals by {len(taxis)} distinct taxis (no time filter)")

    # --- spatio-temporal strict path query --------------------------------- #
    if traversals:
        window_start = min(m.start_time for m in traversals if m.start_time is not None)
        window_end = window_start + 3600.0  # one hour
        in_window = index.query(corridor, window_start, window_end)
        print(
            f"  {len(in_window)} traversals within [{window_start:.0f}s, {window_end:.0f}s] "
            f"by taxis {sorted({m.trajectory_id for m in in_window})[:10]}"
        )

    # --- how often is each corridor length used? ---------------------------- #
    print()
    print("corridor popularity by prefix length:")
    for length in range(1, len(corridor) + 1):
        print(f"  first {length} segment(s): {index.count_path(corridor[:length])} traversals")


if __name__ == "__main__":
    main()
