"""Spatio-temporal strict path queries with compressed timestamps.

A *strict path query* asks: which trajectories travelled along a given path
``P`` during a time interval ``[t1, t2]``?  The paper positions CiNCT as the
spatial core of such a system (Section VII); this example assembles the full
pipeline:

1. generate a fleet of timestamped trips on a grid road network,
2. build a :class:`~repro.queries.StrictPathIndex` (CiNCT + temporal index),
3. compress the timestamps losslessly and lossily and compare their sizes,
4. run strict path queries for several paths and time windows.

Run with:  python examples/strict_path_time_queries.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BoundedErrorTimestampCodec,
    CompressedTimestampStore,
    StrictPathIndex,
    TrajectoryDataset,
    grid_network,
)
from repro.trajectories import straight_biased_walks


def build_fleet(seed: int = 5) -> TrajectoryDataset:
    """Simulate a small taxi fleet with per-segment timestamps."""
    network = grid_network(8, 8)
    rng = np.random.default_rng(seed)
    trajectories = straight_biased_walks(
        network,
        n_trajectories=60,
        min_length=8,
        max_length=25,
        rng=rng,
        straight_bias=2.5,
    )
    # Attach departure times spread over one hour and ~20 s per segment.
    for trajectory in trajectories:
        departure = float(rng.uniform(0, 3600))
        dwell = rng.uniform(10, 30, size=len(trajectory.edges))
        trajectory.timestamps = list(departure + np.cumsum(dwell) - dwell[0])
    return TrajectoryDataset(
        name="fleet", trajectories=trajectories, network=network, description="timestamped fleet"
    )


def main() -> None:
    dataset = build_fleet()
    index = StrictPathIndex(dataset, block_size=31, sa_sample_rate=8)
    print(f"indexed {len(dataset)} trips, {dataset.total_edges} segment observations")
    print(f"spatio-temporal index size: {index.size_in_bits() / 8 / 1024:.1f} KiB")
    print()

    # ---- timestamp compression (Section VII composition) ----------------- #
    lossless = CompressedTimestampStore(dataset.trajectories)
    lossy = CompressedTimestampStore(
        dataset.trajectories, codec=BoundedErrorTimestampCodec(resolution=15.0)
    )
    for label, store in (("delta (1 s resolution)", lossless), ("bounded-error (15 s)", lossy)):
        stats = store.statistics()
        print(
            f"timestamps [{label:>20}]: {stats.bits_per_timestamp:5.1f} bits/timestamp, "
            f"max error {stats.max_absolute_error:5.1f} s"
        )
    print()

    # ---- strict path queries --------------------------------------------- #
    # Use the first few segments of an indexed trip as the query path so the
    # spatial part is guaranteed to have matches.
    probe = dataset.trajectories[0]
    path = probe.edges[2:6]
    whole_day = (0.0, 10_000.0)
    narrow = (probe.timestamps[2] - 1.0, probe.timestamps[5] + 1.0)

    for label, interval in (("whole day", whole_day), ("narrow window", narrow)):
        matches = index.query(path, t_start=interval[0], t_end=interval[1])
        print(f"strict path query over {label}: path of {len(path)} segments, "
              f"{len(matches)} matching traversal(s)")
        for match in matches[:3]:
            print(
                f"  trajectory {match.trajectory_id:3d} "
                f"edges [{match.start_edge_index}, {match.end_edge_index}] "
                f"time [{match.start_time:7.1f}, {match.end_time:7.1f}]"
            )
    print()

    # Purely spatial count for comparison (no temporal filter).
    print("spatial-only count for the same path:", index.count_path(path))


if __name__ == "__main__":
    main()
