"""Scaling study: alphabet size, ET-graph sparsity and exotic baselines.

This example reproduces, at laptop scale, the two synthetic sweeps of the
paper's Section VI-E and adds the two baselines the paper excludes from its
main comparison because they do not support sublinear pattern matching or
blow up with the alphabet:

* the Boyer–Moore-style :class:`~repro.fmindex.LinearScanIndex` (linear scan
  over the uncompressed string), and
* the fixed-block compression-boosting index, whose per-block rank table
  explodes with sigma (problem P3 of Section II-B).

Run with:  python examples/scaling_and_baselines_study.py
"""

from __future__ import annotations

import time

from repro.bench import build_index, bwt_of_bundle, format_table, sample_query_workload
from repro.datasets import randwalk
from repro.fmindex import FixedBlockFMIndex, LinearScanIndex

SIGMAS = (256, 512, 1024)
PATTERN_LENGTH = 8
N_PATTERNS = 15


def measure(index, patterns) -> float:
    """Mean per-query latency in microseconds."""
    started = time.perf_counter()
    for pattern in patterns:
        index.count(pattern)
    return (time.perf_counter() - started) / len(patterns) * 1e6


def main() -> None:
    rows = []
    for sigma in SIGMAS:
        bundle = randwalk(sigma=sigma, average_out_degree=4.0, length_factor=40, seed=3)
        bwt = bwt_of_bundle(bundle)
        patterns = sample_query_workload(bwt, PATTERN_LENGTH, N_PATTERNS, seed=0)

        cinct = build_index("CiNCT", bwt)
        ufmi = build_index("UFMI", bwt)
        fixed = FixedBlockFMIndex(bwt, block_length=2048)
        scan = LinearScanIndex.from_bwt_result(bwt)

        for name, index, bits in (
            ("CiNCT", cinct.index, cinct.bits_per_symbol()),
            ("UFMI", ufmi.index, ufmi.bits_per_symbol()),
            ("FM-FixedBlock", fixed, fixed.bits_per_symbol()),
            ("LinearScan", scan, scan.bits_per_symbol()),
        ):
            rows.append(
                {
                    "sigma": sigma,
                    "method": name,
                    "bits/symbol": round(bits, 2),
                    "query (us)": round(measure(index, patterns), 1),
                }
            )

    print(format_table(rows, title="RandWalk sweep: alphabet size vs size and query latency"))
    print()
    print("Things to notice (the paper's qualitative claims):")
    print(" * CiNCT's bits/symbol and query time barely move as sigma grows (Theorem 5).")
    print(" * The fixed-block index blows up with sigma: its per-block rank table is the")
    print("   P3 problem that motivates implicit boosting and, ultimately, RML.")
    print(" * The linear scan needs no index but its query time is orders of magnitude")
    print("   above every FM-index, which is why the paper excludes it from Fig. 10.")


if __name__ == "__main__":
    main()
