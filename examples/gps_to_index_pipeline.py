"""End-to-end pipeline: raw GPS points -> map matching -> CiNCT index.

Real trajectory datasets (like the paper's Roma taxi data) start life as noisy
GPS points, not road-segment sequences.  This example runs the full substrate
chain of the repository:

1. generate ground-truth trips on a road network,
2. simulate noisy GPS traces along them,
3. recover NCTs with HMM map matching (Newson-Krumm style),
4. measure how well the matching recovered the ground truth, and
5. index the matched trajectories with CiNCT and query them.

Run with:  python examples/gps_to_index_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import CiNCT, grid_network
from repro.mapmatching import HMMMapMatcher, match_traces
from repro.trajectories import shortest_path_trips, simulate_gps_trace

GPS_NOISE_STD = 9.0


def main() -> None:
    rng = np.random.default_rng(7)
    network = grid_network(10, 10, spacing=100.0)
    print(f"road network: {network.n_nodes} nodes, {network.n_edges} directed segments")

    # 1. ground-truth trips
    trips = shortest_path_trips(network, n_trajectories=150, rng=rng, min_hops=6)
    print(f"generated {len(trips)} ground-truth trips")

    # 2. noisy GPS traces
    traces = [
        simulate_gps_trace(network, trip, rng, noise_std=GPS_NOISE_STD, points_per_edge=2)
        for trip in trips
    ]
    total_points = sum(len(trace) for trace in traces)
    print(f"simulated {total_points} GPS points (noise std = {GPS_NOISE_STD} m)")

    # 3. HMM map matching
    matcher = HMMMapMatcher(
        network,
        gps_noise_std=GPS_NOISE_STD,
        transition_beta=60.0,
        candidate_radius=70.0,
    )
    matched = match_traces(matcher, traces)
    print(f"map-matched {len(matched)} trajectories")

    # 4. recovery quality against the ground truth
    recovered = 0
    truth_total = 0
    for trip, match in zip(trips, matched):
        truth = set(trip.edges)
        truth_total += len(truth)
        recovered += len(truth & set(match.edges))
    print(f"segment recall of map matching: {recovered / truth_total:.1%}")

    # 5. index the matched NCTs with CiNCT and query them
    index, trajectory_string = CiNCT.from_trajectories(
        [match.edges for match in matched], block_size=63
    )
    print(
        f"CiNCT over matched data: |T| = {index.length}, "
        f"{index.bits_per_symbol():.2f} bits/symbol"
    )

    probe = matched[0].edges[1:4]
    pattern = trajectory_string.encode_pattern(probe)
    print(
        "example query — vehicles that traversed",
        " -> ".join(str(edge) for edge in probe),
        ":", index.count(pattern), "occurrences",
    )


if __name__ == "__main__":
    main()
