"""Serve a trajectory index over HTTP and query it with plain urllib.

The serving tier (:mod:`repro.service`) turns one engine into a network
service: concurrent requests joining the same micro-batch window run as a
single ``engine.run_many`` call, admission control sheds overload with
retriable 503s instead of queueing unboundedly, and ``/health`` + ``/stats``
expose the engine's shard health, growth epochs, cache counters, and the
service's coalescing/shedding statistics.

This example starts the service in-process on a background thread (the same
code path ``python -m repro serve`` runs), fires a burst of concurrent
clients at it with nothing but the standard library, and then reads the
stats surface to show how many engine batches the burst actually cost.

Run with:  python examples/serve_and_query.py
"""

from __future__ import annotations

import json
import urllib.request
from concurrent.futures import ThreadPoolExecutor

from repro.datasets import singapore_like
from repro.engine import EngineConfig, build_engine
from repro.service import ServiceConfig, serve_in_background

N_CLIENTS = 24


def post_query(url: str, document: dict) -> dict:
    request = urllib.request.Request(
        url + "/query",
        data=json.dumps(document).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30.0) as response:
        return json.load(response)


def main() -> None:
    bundle = singapore_like(scale=0.1)
    trajectories = [list(t) for t in bundle.symbol_trajectories]
    engine = build_engine(
        trajectories, EngineConfig(backend="cinct", sa_sample_rate=8)
    )
    print(f"indexed {engine.n_trajectories} trajectories, |T| = {engine.length}")

    config = ServiceConfig(port=0, batch_window_ms=25.0, max_batch_size=16)
    with serve_in_background(engine, config) as handle:
        print(f"serving on {handle.url}")

        # A duplicate-heavy burst: real road networks have hot paths, and the
        # coalescer + the engine's dedupe stage turn repeats into one lookup.
        probes = [trajectory[:2] for trajectory in trajectories[:6]]
        documents = [
            {"type": "count", "path": probes[client % len(probes)]}
            for client in range(N_CLIENTS)
        ]
        with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
            answers = list(
                pool.map(lambda doc: post_query(handle.url, doc), documents)
            )
        for path, answer in zip(probes, answers):
            print(f"  count{tuple(path)!r:28} -> {answer['count']}")

        health = json.load(urllib.request.urlopen(handle.url + "/health"))
        stats = json.load(urllib.request.urlopen(handle.url + "/stats"))
        service = stats["service"]
        print(f"health      : {health['status']} (epochs {health['epochs']})")
        print(
            f"coalescing  : {service['served']} requests served in "
            f"{service['batches']} engine batches "
            f"(mean batch {service['mean_batch_size']:.1f}, "
            f"largest {service['largest_batch']})"
        )
        print(f"load shed   : {service['shed']}")
        cache = stats["engine"]["cache"]
        print(f"result cache: hits={cache['hits']} misses={cache['misses']}")
    print("drained; service stopped")


if __name__ == "__main__":
    main()
